"""Staging coordinator — the staged-queue / data-manager interplay (§IV-E).

Listens for :class:`~repro.engine.events.TaskPlaced` events, walks the task
through ``SCHEDULED -> STAGING`` and hands its input files to the data
manager.  When the data manager reports a ticket done the coordinator
validates it (the task may have been re-scheduled or re-assigned since, in
which case a *newer* ticket is authoritative) and announces the outcome as a
:class:`~repro.engine.events.StagingDone` event — success feeds the dispatch
coordinator's staged queues, failure feeds the failure coordinator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.dag import Task, TaskState
from repro.data.manager import StagingTicket
from repro.engine.events import StagingDone, TaskPlaced

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExecutionEngine

__all__ = ["StagingCoordinator"]


class StagingCoordinator:
    """Moves placed tasks through data staging."""

    def __init__(self, engine: "ExecutionEngine") -> None:
        self._engine = engine
        engine.bus.subscribe(TaskPlaced, self._on_task_placed)
        engine.data_manager.add_staged_callback(self._on_ticket_done)

    # ---------------------------------------------------------------- events
    def _on_task_placed(self, event: TaskPlaced) -> None:
        self.begin_staging(event.task, event.endpoint)

    def begin_staging(self, task: Task, endpoint: str) -> None:
        """Assign ``task`` to ``endpoint`` and start staging its inputs."""
        engine = self._engine
        now = engine.clock.now()
        task.assigned_endpoint = endpoint
        engine.graph.set_state(task.task_id, TaskState.SCHEDULED, now=now)
        engine.index.mark_undispatched(task.task_id, endpoint)
        engine.graph.set_state(task.task_id, TaskState.STAGING, now=now)
        # The task's DHA upward rank orders its transfers within the data
        # plane's demand class (the FIFO path ignores the priority).
        engine.data_manager.stage(
            task.task_id, task.input_files, endpoint, priority=task.priority
        )

    def _on_ticket_done(self, ticket: StagingTicket) -> None:
        engine = self._engine
        if ticket.task_id not in engine.graph:
            return
        task = engine.graph.get(ticket.task_id)
        if task.state not in (TaskState.STAGING, TaskState.SCHEDULED):
            return
        if engine.data_manager.ticket_for_task(task.task_id) is not ticket:
            # A re-scheduling move or retry opened a newer ticket for this
            # task; this one belongs to an abandoned destination.
            return
        if not ticket.failed:
            engine.graph.set_state(task.task_id, TaskState.STAGED, now=engine.clock.now())
        engine.bus.publish(
            StagingDone.for_task(
                task,
                time=engine.clock.now(),
                endpoint=ticket.destination,
                failed=ticket.failed,
                ticket_id=ticket.ticket_id,
            )
        )

    # --------------------------------------------------------------- helpers
    def augment_input_files(self, task: Task) -> bool:
        """Add dependency outputs to the task's input file list.

        Returns True when any file was added (the task's input size — and
        therefore its own and its successors' input-size estimates — changed).
        """
        seen = {f.file_id for f in task.input_files}
        added = False
        for parent in self._engine.graph.predecessors(task.task_id):
            for file in parent.output_files:
                if file.file_id not in seen:
                    task.input_files.append(file)
                    seen.add(file.file_id)
                    added = True
        return added
