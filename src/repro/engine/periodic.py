"""Periodic coordinator — everything the engine does on a cadence (§IV-B/D/H).

Independent timers, all driven by the engine clock so they behave
identically under the simulated and wall clocks:

* **endpoint sync** — re-synchronise the endpoint monitor's mocks with the
  (possibly stale) service view and announce
  :class:`~repro.engine.events.CapacityChanged`;
* **profiler refresh** — retrain the execution/transfer models on the
  observations streamed in since the last refresh;
* **placement re-solve** — let the global placement service refresh its
  facility-location plan when its cadence elapsed or dynamics invalidated
  the current generation (the service gates itself);
* **re-scheduling** — offer the not-yet-dispatched tasks back to the
  scheduler (DHA's task stealing, §IV-D);
* **scaling** — let the elasticity strategy request workers (§IV-H);

plus the metrics sampler, which reads the per-endpoint pending counts
straight from the incremental :class:`~repro.engine.state.TaskIndex` instead
of re-scanning every undispatched task.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING

from repro.core.dag import TaskState
from repro.elastic.scaling import EndpointView
from repro.engine.events import CapacityChanged, TaskPlaced

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExecutionEngine

__all__ = ["PeriodicCoordinator"]

#: Undispatched states eligible for a re-scheduling pass.
_RESCHEDULABLE = (TaskState.SCHEDULED, TaskState.STAGING, TaskState.STAGED)


class PeriodicCoordinator:
    """Runs the engine's periodic duties when their intervals elapse."""

    def __init__(self, engine: "ExecutionEngine", scaling_check_interval_s: float) -> None:
        self._engine = engine
        self.scaling_check_interval_s = scaling_check_interval_s
        self._last_profiler_update = 0.0
        self._last_endpoint_sync = 0.0
        self._last_reschedule = 0.0
        self._last_scaling_check = 0.0
        self._last_metrics_sample = 0.0
        #: Re-scheduling candidates cached against the undispatched-set epoch
        #: (membership changes bump it; targets and states are re-checked).
        self._resched_cache_epoch = -1
        self._resched_cache: list = []

    # ------------------------------------------------------------------ tick
    def check(self) -> None:
        engine = self._engine
        now = engine.clock.now()
        if now - self._last_endpoint_sync >= engine.config.endpoint_sync_interval_s:
            self._last_endpoint_sync = now
            engine.endpoint_monitor.synchronize()
            engine.bus.publish(CapacityChanged(time=now))
        if now - self._last_profiler_update >= engine.config.profiler_update_interval_s:
            self._last_profiler_update = now
            retrained = engine.execution_profiler.update_models()
            engine.transfer_profiler.update_models()
            if retrained and engine.context is not None:
                # Stale entries would be rejected lazily by their generation
                # stamp anyway; dropping them eagerly frees the memory.
                engine.context.invalidate_predictions()
        if engine.plan_service is not None:
            # Before re-scheduling/scaling: both steer by the plan, so a due
            # re-solve (cadence elapsed or generation invalidated) must land
            # first.  The service itself gates on its own interval.
            engine.plan_service.maybe_resolve(now, engine)
        if (
            engine.scheduler.supports_rescheduling
            and now - self._last_reschedule >= engine.config.rescheduling_interval_s
        ):
            self._last_reschedule = now
            self.run_rescheduling()
        if now - self._last_scaling_check >= self.scaling_check_interval_s:
            self._last_scaling_check = now
            self.run_scaling()
        if now - self._last_metrics_sample >= engine.metrics.sample_interval_s:
            self.sample_metrics()

    # ---------------------------------------------------------- re-scheduling
    def run_rescheduling(self) -> None:
        engine = self._engine
        index = engine.index
        if not index.undispatched_count:
            return
        graph = engine.graph
        if self._resched_cache_epoch != index.undispatched_epoch:
            self._resched_cache_epoch = index.undispatched_epoch
            self._resched_cache = [
                graph.get(task_id) for task_id in index.undispatched_ids() if task_id in graph
            ]
        candidates = [t for t in self._resched_cache if t.state in _RESCHEDULABLE]
        if not candidates:
            return
        t0 = _time.perf_counter()
        moves = engine.scheduler.reschedule(candidates)
        engine.metrics.record_scheduling_overhead(_time.perf_counter() - t0, len(moves))
        for move in moves:
            task = graph.get(move.task_id)
            if task.assigned_endpoint == move.endpoint:
                continue
            task.reschedule_count += 1
            engine.metrics.record_reschedule()
            # Announce the new endpoint selection; the staging coordinator
            # re-stages toward the new target (already-arrived replicas at
            # the old endpoint remain reusable).
            engine.bus.publish(
                TaskPlaced.for_task(task, time=engine.clock.now(), endpoint=move.endpoint)
            )

    # ---------------------------------------------------------------- scaling
    def run_scaling(self) -> None:
        engine = self._engine
        pending = (
            engine.index.queued_count
            + engine.graph.state_count(TaskState.SCHEDULED)
            + engine.graph.state_count(TaskState.STAGING)
            + engine.graph.state_count(TaskState.STAGED)
        )
        views = {}
        for name in engine.fabric.endpoint_names():
            mock = engine.endpoint_monitor.mock(name)
            views[name] = EndpointView(
                name=name,
                active_workers=mock.active_workers,
                idle_workers=mock.idle_workers,
                outstanding_tasks=mock.outstanding_tasks,
                max_workers=mock.max_workers,
            )
        decision = engine.scaling_strategy.decide(pending, views)
        for name, workers in decision.workers_to_request.items():
            if workers > 0:
                engine.fabric.request_workers(name, workers)

    # ---------------------------------------------------------------- metrics
    def sample_metrics(self, force: bool = False) -> None:
        engine = self._engine
        now = engine.clock.now()
        if not force and now - self._last_metrics_sample < engine.metrics.sample_interval_s:
            return
        self._last_metrics_sample = now
        engine.metrics.sample(
            now,
            engine.fabric.worker_snapshot(),
            engine.data_manager.active_staging_tasks(),
            engine.index.undispatched_by_endpoint(),
        )
