"""The event-driven orchestration engine (§IV, Fig. 1).

:class:`ExecutionEngine` composes the five system components of the paper —
DAG generator, monitors, profilers, scheduler and data manager — around a
deterministic :class:`~repro.engine.bus.EventBus` and four focused
coordinators:

* :class:`~repro.engine.placement.PlacementCoordinator` — ready tasks in,
  :class:`TaskPlaced` events out (the scheduler's decide step);
* :class:`~repro.engine.staging.StagingCoordinator` — placed tasks through
  data staging (:class:`StagingDone`);
* :class:`~repro.engine.dispatch.DispatchCoordinator` — delay-mechanism
  gating and fabric submission (:class:`TaskDispatched`);
* :class:`~repro.engine.failure.FailureCoordinator` — the retry / reassign /
  fail ladder of §IV-G;

plus the :class:`~repro.engine.periodic.PeriodicCoordinator` for everything
on a cadence.  The monitors, the metrics collector and the scheduler observe
the run purely through bus subscriptions — the subscription order reproduces
the call order of the monolithic client this engine replaced, so scheduling
outcomes are unchanged.

The engine is deliberately single-threaded and runs identically on the
discrete-event simulation substrate (experiments) and on real thread-pool
endpoints (examples).
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.config import Config
from repro.core.dag import Task, TaskGraph, TaskState
from repro.core.exceptions import SchedulingError
from repro.core.functions import FederatedFunction
from repro.core.futures import UniFuture
from repro.data.manager import DataManager
from repro.data.remote_file import GlobusFile, RemoteFile, RsyncFile
from repro.data.transfer import LocalCopyTransferBackend, TransferBackend, TransferResult
from repro.dataplane import DataPlane, Prefetcher
from repro.elastic.scaling import DefaultScalingStrategy, NoScalingStrategy, ScalingStrategy
from repro.engine.bus import EventBus
from repro.engine.dispatch import DispatchCoordinator
from repro.engine.events import (
    CapacityChanged,
    EndpointCrashed,
    EndpointRejoined,
    TaskCompleted,
    TaskDispatched,
    TaskFailed,
    TaskPlaced,
    TaskReady,
    TasksCompleted,
    TasksReady,
    WorkerChurn,
)
from repro.engine.failure import FailureCoordinator
from repro.engine.periodic import PeriodicCoordinator
from repro.engine.placement import PlacementCoordinator
from repro.engine.staging import StagingCoordinator
from repro.engine.state import TaskIndex
from repro.faas.fabric import ExecutionFabric
from repro.faas.types import TaskExecutionRecord
from repro.metrics.collector import MetricsCollector
from repro.monitor.endpoint_monitor import EndpointMonitor
from repro.monitor.store import HistoryStore
from repro.monitor.task_monitor import TaskMonitor
from repro.profiling.execution import ExecutionProfiler
from repro.profiling.transfer import TransferProfiler
from repro.sched import create_scheduler
from repro.sched.base import Scheduler, SchedulingContext

__all__ = [
    "ENDPOINT_HINT_KWARG",
    "MAX_RETRIES_KWARG",
    "PLACEMENT_DISABLED",
    "ExecutionEngine",
    "build_data_manager",
    "build_scaling_strategy",
]

#: Sentinel for the engine's ``placement`` argument: the caller owns the
#: placement decision and decided on *no plan* — the engine must not build
#: its own service even though the config enables one.  (``None`` means
#: "undecided": the single-workflow path self-builds when enabled; the
#: open-loop streaming serving path passes this sentinel instead.)
PLACEMENT_DISABLED = object()

#: Reserved keyword argument that pins a task to a specific endpoint,
#: bypassing the scheduler (used by the elasticity experiments).
ENDPOINT_HINT_KWARG = "unifaas_endpoint"

#: Reserved keyword argument that overrides the §IV-G retry budget for one
#: task (the authoring API's ``@job(retries=...)``).
MAX_RETRIES_KWARG = "unifaas_max_retries"


def build_data_manager(config: Config, backend: TransferBackend, clock) -> DataManager:
    """The data layer a ``config`` asks for: the data-plane subsystem
    (replica store + priority transfer scheduling + prefetch) or, with the
    plane disabled, the paper's plain FIFO staging path, byte-identically.

    Shared between the single-workflow engine and the multi-workflow
    serving layer (:class:`~repro.serving.manager.WorkflowManager`), which
    builds *one* data manager for all tenant workflows.
    """
    if config.enable_dataplane:
        default_storage = (
            config.storage_capacity_gb * 1024.0
            if config.storage_capacity_gb is not None
            else None
        )
        return DataPlane(
            backend,
            clock,
            mechanism=config.transfer_mechanism,
            max_concurrent_transfers=config.max_concurrent_transfers,
            max_retries=config.max_transfer_retries,
            storage_budget_mb=config.storage_budget_mb(),
            default_storage_mb=default_storage,
            eviction_policy=config.eviction_policy,
        )
    return DataManager(
        backend,
        clock,
        mechanism=config.transfer_mechanism,
        max_concurrent_transfers=config.max_concurrent_transfers,
        max_retries=config.max_transfer_retries,
    )


def build_scaling_strategy(config: Config) -> ScalingStrategy:
    """The elasticity strategy a ``config`` asks for (§IV-H).

    Also shared with the serving layer, where scaling is a federation-level
    concern: the manager aggregates every tenant's pending pressure into one
    strategy built here, while tenant engines get a no-op.
    """
    if not config.enable_scaling:
        return NoScalingStrategy()
    caps = {
        spec.endpoint: spec.max_workers
        for spec in config.executors
        if spec.max_workers is not None
    }
    return DefaultScalingStrategy(caps=caps)


class ExecutionEngine:
    """Event-driven execution of a dynamic federated workflow."""

    #: Consecutive no-progress rounds before the stall diagnosis runs.
    stall_soft_rounds: int = 10
    #: Hard ceiling on consecutive no-progress rounds.  The soft diagnosis
    #: may legitimately wait (staged tasks are re-offered every pump), but a
    #: workflow that makes no progress for this many rounds can never
    #: recover — raise instead of spinning forever.
    stall_hard_rounds: int = 1000

    def __init__(
        self,
        config: Config,
        fabric: ExecutionFabric,
        *,
        transfer_backend: Optional[TransferBackend] = None,
        scheduler: Optional[Scheduler] = None,
        scaling_strategy: Optional[ScalingStrategy] = None,
        history_store: Optional[HistoryStore] = None,
        metrics: Optional[MetricsCollector] = None,
        scaling_check_interval_s: float = 10.0,
        endpoint_monitor: Optional[EndpointMonitor] = None,
        execution_profiler: Optional[ExecutionProfiler] = None,
        transfer_profiler: Optional[TransferProfiler] = None,
        task_monitor: Optional[TaskMonitor] = None,
        data_manager: Optional[DataManager] = None,
        placement: Optional["PlacementService"] = None,
        namespace: str = "",
    ) -> None:
        self.config = config
        self.fabric = fabric
        self.clock = fabric.clock
        self.graph = TaskGraph()
        self.bus = EventBus()
        #: Columnar fast path: batched event delivery + array-backed demand
        #: queries.  Off, the scalar per-task event path (the equivalence
        #: oracle) runs instead; both produce byte-identical event logs.
        self._columnar = bool(getattr(config, "enable_columnar_engine", True))
        self.index = TaskIndex(store=self.graph.store if self._columnar else None)
        #: Workflow namespace prefixing this engine's task ids (multi-tenant
        #: serving); "" keeps the process-global task counter of the
        #: single-workflow path byte-identically.
        self.namespace = namespace
        self._task_seq = 0
        #: Whether this engine built its own data manager (single-workflow
        #: path).  Under the serving layer the manager owns the shared data
        #: plane and wires its crash/rejoin + profiler observers exactly once.
        self._owns_data_manager = data_manager is None
        self._owns_task_monitor = task_monitor is None

        # Monitors.  Shared components (multi-workflow serving) are injected;
        # the single-workflow path builds its own, warm-started from history.
        store: Optional[HistoryStore] = None
        if task_monitor is None or execution_profiler is None or transfer_profiler is None:
            store = history_store or HistoryStore(config.history_db_path or ":memory:")
        self.task_monitor = task_monitor or TaskMonitor(store)
        self.endpoint_monitor = endpoint_monitor or EndpointMonitor(
            lambda name: fabric.endpoint_status(name),
            self.clock,
            sync_interval_s=config.endpoint_sync_interval_s,
        )

        # Profilers (warm-started from history when available).
        self.execution_profiler = execution_profiler or ExecutionProfiler(
            store if store is not None and store.task_count() else None
        )
        self.transfer_profiler = transfer_profiler or TransferProfiler(
            store if store is not None and store.transfer_count() else None
        )
        if self._owns_task_monitor:
            self.task_monitor.add_task_listener(self.execution_profiler.observe)

        # Data manager — either the data-plane subsystem (replica store +
        # priority transfer scheduling + prefetch) or, with the plane
        # disabled, the paper's plain FIFO staging path, byte-identically.
        if data_manager is not None:
            self.data_manager: DataManager = data_manager
        else:
            backend = transfer_backend or LocalCopyTransferBackend(clock=self.clock)
            self.data_manager = build_data_manager(config, backend, self.clock)
            self.data_manager.add_transfer_callback(self._on_transfer_result)

        # Scheduler.
        if scheduler is not None:
            self.scheduler = scheduler
        else:
            kwargs = {}
            if config.strategy == "DHA":
                kwargs = dict(
                    enable_delay_mechanism=config.enable_delay_mechanism,
                    enable_rescheduling=config.enable_rescheduling,
                    vectorized=config.enable_vectorized_scheduling,
                )
            elif config.strategy == "HEFT":
                kwargs = dict(vectorized=config.enable_vectorized_scheduling)
            self.scheduler = create_scheduler(config.strategy, **kwargs)

        # Elasticity.
        self.scaling_strategy = scaling_strategy or build_scaling_strategy(config)

        # Metrics.
        self.metrics = metrics or MetricsCollector()

        # Global placement (capacitated facility location).  A shared service
        # (multi-workflow serving) is injected; the single-workflow path
        # builds its own when the config enables the plan.  The service hands
        # every greedy layer the same immutable plan: the scheduler keeps
        # placements inside the warm set, the elastic scaler anchors its
        # split on the plan worker targets, and the data plane prefers plan
        # replica roots as transfer sources.
        self.plan_service: Optional["PlacementService"] = (
            None if placement is PLACEMENT_DISABLED else placement
        )
        if (
            placement is None  # the caller did not decide for us
            and self.plan_service is None
            and config.enable_placement_plan
        ):
            from repro.placement.service import PlacementService

            self.plan_service = PlacementService(config)
        if self.plan_service is not None:
            self.plan_service.attach(self)
            self.scheduler.plan_provider = self.plan_service.current_plan
            if hasattr(self.scaling_strategy, "plan_provider"):
                self.scaling_strategy.plan_provider = self.plan_service.current_plan
            if isinstance(self.data_manager, DataPlane):
                self.data_manager.set_plan_provider(self.plan_service.current_plan)

        # Engine state.
        self.context: Optional[SchedulingContext] = None
        self._running = False
        #: Tasks submitted since the last pump round, handed to the scheduler
        #: in one ``on_tasks_added`` batch (the sole graph-growth hook) so
        #: DHA's incremental ancestors-only recompute runs once per round.
        self._pending_added: List[Task] = []
        #: Workflow-growth sources (authoring runtimes).  Drained at the top
        #: of every pump round — a deterministic point outside any bus
        #: cascade — so runtime graph growth is digest-stable across the
        #: columnar and scalar event paths.
        self._growth_hooks: List[Callable[[], None]] = []
        #: Outstanding consumers per task id — the data plane's output
        #: lifecycle: when the count hits zero the producer's outputs are
        #: *expendable* (their last replica may be evicted).  Maintained for
        #: dynamic DAGs too: growing the workflow re-raises the count before
        #: the new consumer runs.
        self._consumer_counts: Dict[str, int] = {}

        # Observers first: the subscription order reproduces the inline call
        # order of the monolithic client (endpoint monitor, task monitor,
        # metrics, scheduler, then the engine's own continuation).  Wiring
        # lives here so repro.monitor / repro.metrics never depend upward on
        # the engine package.
        self.bus.subscribe(
            TaskDispatched,
            lambda e: self.endpoint_monitor.record_dispatch(e.endpoint, cores=e.cores),
        )
        self.bus.subscribe(
            TaskCompleted,
            lambda e: self.endpoint_monitor.record_completion(e.endpoint, cores=e.cores),
        )
        self.bus.subscribe(TaskCompleted, lambda e: self.task_monitor.observe_task(e.record))
        self.bus.subscribe(
            TaskCompleted,
            lambda e: self.metrics.record_completion(
                e.endpoint, e.record.function_name, e.record.success
            ),
        )
        self.bus.subscribe(
            TaskDispatched, lambda e: self.scheduler.on_task_dispatched(e.task, e.endpoint)
        )
        self.bus.subscribe(
            TaskCompleted, lambda e: self.scheduler.on_task_completed(e.task, e.record)
        )
        self.bus.subscribe(CapacityChanged, lambda e: self.scheduler.on_capacity_changed())

        # Endpoint dynamics (crash / rejoin / churn) change capacity out from
        # under the mocked view: re-synchronise the monitor and react at once
        # instead of waiting for the periodic cadences.  Subscribed before
        # the coordinators so the failure coordinator's crash handler sees
        # fresh online flags.
        for dynamics_type in (EndpointCrashed, EndpointRejoined, WorkerChurn):
            self.bus.subscribe(dynamics_type, self._on_endpoint_dynamics)

        # Coordinators (their constructors subscribe to the bus).
        self.placement = PlacementCoordinator(self)
        self.staging = StagingCoordinator(self)
        self.dispatch = DispatchCoordinator(self)
        self.failure = FailureCoordinator(self)
        self.periodic = PeriodicCoordinator(self, scaling_check_interval_s)
        self.bus.subscribe(TaskReady, self._on_task_ready)
        self.bus.subscribe(TaskCompleted, self._on_task_completed)

        # Data-plane wiring: pin lifecycle, crash cleanup and the prefetch
        # pipeline.  Subscribed after the engine's own continuation so the
        # prefetcher sees freshly registered outputs and final task states.
        self.prefetcher: Optional[Prefetcher] = None
        if isinstance(self.data_manager, DataPlane):
            plane = self.data_manager
            self.bus.subscribe(
                TaskCompleted,
                lambda e: plane.release_task(e.task_id) if e.success else None,
            )
            self.bus.subscribe(TaskFailed, lambda e: plane.release_task(e.task_id))
            if self._owns_data_manager:
                # A shared plane (serving layer) gets these exactly once, on
                # the manager's control bus — not once per tenant workflow.
                self.bus.subscribe(
                    EndpointCrashed, lambda e: plane.on_endpoint_crashed(e.endpoint)
                )
                self.bus.subscribe(
                    EndpointRejoined, lambda e: plane.on_endpoint_rejoined(e.endpoint)
                )
            if config.enable_prefetch:
                self.prefetcher = Prefetcher(
                    plane,
                    self.graph,
                    placement_hint=lambda task, claims=None: self.scheduler.placement_hint(
                        task, claims
                    ),
                    endpoint_names=lambda: self.fabric.endpoint_names(),
                    plan_provider=(
                        self.plan_service.current_plan
                        if self.plan_service is not None
                        else None
                    ),
                )
                self.bus.subscribe(
                    TaskPlaced,
                    lambda e: self.prefetcher.on_task_placed(e.task_id, e.endpoint),
                )
                self.bus.subscribe(
                    TaskFailed,
                    lambda e: self.prefetcher.on_task_terminal(e.task_id),
                )
                self.bus.subscribe(
                    TaskDispatched,
                    lambda e: self.prefetcher.on_predecessor_progress(e.task_id),
                )
                self.bus.subscribe(
                    TaskCompleted,
                    lambda e: self.prefetcher.on_predecessor_progress(e.task_id)
                    if e.success
                    else None,
                )

    # ------------------------------------------------------------- submission
    def submit(self, fn: FederatedFunction, args: tuple, kwargs: Dict[str, Any]) -> UniFuture:
        """Register one invocation of ``fn`` and return its future."""
        kwargs = dict(kwargs)
        endpoint_hint = kwargs.pop(ENDPOINT_HINT_KWARG, None)
        max_retries = kwargs.pop(MAX_RETRIES_KWARG, None)

        dependencies: Set[str] = set()
        input_files: List[RemoteFile] = []
        for value in list(args) + list(kwargs.values()):
            if isinstance(value, UniFuture) and value.task_id is not None:
                dependencies.add(value.task_id)
            elif isinstance(value, RemoteFile):
                input_files.append(value)

        if self.namespace:
            # Workflow-namespaced ids: deterministic per workflow regardless
            # of how tenant submissions interleave in the process, and unique
            # across the federation so the shared replica store's pins and
            # per-ticket accounting never alias between tenants.
            task = Task(
                function=fn,
                args=args,
                kwargs=kwargs,
                dependencies=dependencies,
                task_id=f"{self.namespace}/task-{self._task_seq:08d}",
            )
            self._task_seq += 1
        else:
            task = Task(function=fn, args=args, kwargs=kwargs, dependencies=dependencies)
        task.input_files = input_files
        for dep in dependencies:
            self._consumer_counts[dep] = self._consumer_counts.get(dep, 0) + 1
            if isinstance(self.data_manager, DataPlane) and dep in self.graph:
                # Dynamic DAG: a new consumer re-protects outputs the
                # lifecycle hook may already have marked expendable.
                for file in self.graph.get(dep).output_files:
                    self.data_manager.store.reclaim(file)
        if endpoint_hint is not None:
            task.assigned_endpoint = str(endpoint_hint)
        if max_retries is not None:
            task.max_retries = int(max_retries)
        self.graph.add_task(task, now=self.clock.now())

        if task.state == TaskState.READY:
            self.bus.publish(TaskReady.for_task(task, time=self.clock.now(), via="submit"))
        if self._running:
            # Deferred: the scheduler sees every addition of this pump round
            # in one on_tasks_added batch (flushed by drain_growth).
            self._pending_added.append(task)
        return task.future

    # -------------------------------------------------------------------- run
    def run(self, max_wall_time_s: Optional[float] = None) -> None:
        """Execute the composed workflow to completion.

        Raises :class:`SchedulingError` if the workflow stalls (for example,
        every endpoint lost all its workers and scaling is disabled).
        """
        if len(self.graph) == 0:
            return
        self._start()
        wall_start = _time.monotonic()
        stall_rounds = 0
        while not self.graph.is_complete():
            if max_wall_time_s is not None and _time.monotonic() - wall_start > max_wall_time_s:
                raise SchedulingError(
                    f"workflow exceeded the wall-time budget of {max_wall_time_s} s"
                )
            records = self.fabric.process()
            if self._columnar:
                self._handle_completions(records)
            else:
                for record in records:
                    self._handle_completion(record)
            self.periodic.check()
            progressed = self._pump()
            if records or progressed or self.fabric.pending_work():
                stall_rounds = 0
                continue
            stall_rounds += 1
            if stall_rounds >= self.stall_hard_rounds:
                raise SchedulingError(
                    f"workflow made no progress for {stall_rounds} rounds; "
                    f"task states: {self.graph.counts()}"
                )
            if stall_rounds > self.stall_soft_rounds:
                self._diagnose_stall()
        self.finalize()
        self.fabric.flush()

    def finalize(self) -> None:
        """Close out the run's metrics (also called per workflow when this
        engine runs under the multi-workflow serving layer)."""
        if isinstance(self.data_manager, DataPlane) and self._owns_data_manager:
            self.metrics.set_dataplane_stats(self.data_manager.stats_dict())
        if self._columnar:
            # Stream the store's timestamp reduction straight into the
            # collector's bounded sketch — no intermediate Python list.
            self.metrics.set_wait_times(self.graph.store.wait_values())
        else:
            self.metrics.set_wait_times(self.wait_times())
        self.metrics.workflow_finished(self.clock.now())

    def wait_times(self) -> List[float]:
        """Per-task ready-to-execution-start wait, in task-id order.

        The quantity the serving layer's arbitration policies trade between
        tenants: how long a runnable task sat in client queues (placement,
        staging, delay mechanism, dispatch) before a worker started it.
        """
        if self._columnar:
            # One array reduction over the store's timestamp columns; same
            # values, same order as the scalar scan below.
            return self.graph.store.wait_times()
        waits: List[float] = []
        for task in self.graph:
            ts = task.timestamps
            if ts.ready is not None and ts.started is not None:
                waits.append(max(0.0, ts.started - ts.ready))
        return waits

    def start(self) -> None:
        """Begin execution bookkeeping without driving the run loop.

        The multi-workflow serving layer drives the shared fabric itself and
        pumps each tenant engine; it calls this once per workflow when the
        workflow's (possibly staggered) arrival comes due.  Idempotent.
        """
        if not self._running:
            self._start()

    def _start(self) -> None:
        self._running = True
        for name in self.fabric.endpoint_names():
            if name not in self.endpoint_monitor.endpoint_names():
                self.endpoint_monitor.register(name)
        self.context = SchedulingContext(
            graph=self.graph,
            endpoint_monitor=self.endpoint_monitor,
            execution_profiler=self.execution_profiler,
            transfer_profiler=self.transfer_profiler,
            data_manager=self.data_manager,
            config=self.config,
            clock=self.clock,
            speed_factors={
                name: self.fabric.speed_factor(name) for name in self.fabric.endpoint_names()
            },
        )
        self.scheduler.initialize(self.context)
        self.scheduler.on_workflow_submitted(self.graph.tasks())
        self.metrics.workflow_started(self.clock.now())
        self.periodic.sample_metrics(force=True)

    def _diagnose_stall(self) -> None:
        staged = self.graph.state_count(TaskState.STAGED)
        if staged and not self.config.enable_delay_mechanism:
            return  # dispatch will be retried on the next pump
        if staged:
            # Delay mechanism with nothing running anywhere: force dispatch so
            # the workflow cannot deadlock on an empty pool.
            forced = self.dispatch.dispatch_staged(force=True)
            if forced:
                return
        counts = self.graph.counts()
        raise SchedulingError(f"workflow stalled; task states: {counts}")

    # ------------------------------------------------------------------ pump
    def add_growth_hook(self, hook: Callable[[], None]) -> None:
        """Register a workflow-growth source (an authoring runtime).

        Hooks run at the top of every pump round — a deterministic point
        *outside* any bus cascade — and may call :meth:`submit`.  Keeping
        growth out of completion cascades is what makes runtime graph growth
        digest-stable across the columnar and scalar event paths: both log a
        round's completions first, then the new tasks' ``TaskReady`` entries
        in the same order.
        """
        self._growth_hooks.append(hook)

    def drain_growth(self) -> bool:
        """Run growth hooks, then notify the scheduler of the round's batch.

        ``Scheduler.on_tasks_added`` is the sole graph-growth hook: every
        task submitted since the last round (by growth hooks or directly by
        the caller) lands in one batch, so DHA's incremental ancestors-only
        priority recompute runs once instead of once per task.

        Returns True when the graph grew (feeds stall detection and lets the
        run loop see recovery branches materialized by a terminal failure
        before it re-checks completion).
        """
        before = len(self.graph)
        for hook in self._growth_hooks:
            hook()
        if self._pending_added:
            batch = self._pending_added
            self._pending_added = []
            self.scheduler.on_tasks_added(batch)
        return len(self.graph) > before

    def _pump(self) -> bool:
        """One round of scheduling, staging and dispatching.

        Returns True when any task changed state (used for stall detection).
        """
        progressed = self.drain_growth()
        progressed |= self.placement.schedule_ready()
        progressed |= self.dispatch.dispatch_staged()
        self.fabric.flush()
        return progressed

    # ---------------------------------------------------------------- events
    def _on_endpoint_dynamics(self, event) -> None:
        """React to a crash / rejoin / churn announced on the bus.

        The service notices the connection change immediately (heartbeat),
        so the monitor force-syncs against it; the elastic scaler and DHA's
        re-scheduling then run promptly — the reactions the scenario
        subsystem's chaos regimes exercise.
        """
        self.endpoint_monitor.synchronize(force=True)
        self.bus.publish(CapacityChanged(time=self.clock.now()))
        if self.plan_service is not None:
            # Dynamics invalidate the plan (the service's generation mirrors
            # the monitor's state_version idiom): a crash excludes the
            # endpoint from future solves, a rejoin re-admits it, churn just
            # forces a re-solve.  Under the serving layer every tenant engine
            # forwards the same event; the service dedups the bump.
            if isinstance(event, EndpointCrashed):
                self.plan_service.mark_offline(event.endpoint)
            elif isinstance(event, EndpointRejoined):
                self.plan_service.mark_online(event.endpoint)
            else:
                self.plan_service.bump()
        if self._running:
            if self.plan_service is not None:
                # Re-solve before the reactions below so the scaler and the
                # re-scheduling pass already steer by the post-event plan.
                self.plan_service.maybe_resolve(self.clock.now(), self)
            self.periodic.run_scaling()
            # On a crash the failure coordinator owns re-placement of the
            # stranded tasks; running a rescheduling pass here too would move
            # the same tasks twice (its TaskPlaced events are deferred by the
            # bus cascade, so the coordinator cannot see them yet).
            if self.scheduler.supports_rescheduling and not isinstance(event, EndpointCrashed):
                self.periodic.run_rescheduling()

    def _prepare_ready(self, task: Task) -> None:
        """Input-file augmentation + cache invalidation for a ready task."""
        if self.staging.augment_input_files(task):
            # The task's input size just changed: the store's size column,
            # the task's own cached estimates, and its successors' are stale
            # — while this task has no outputs yet, their estimates predict
            # its output *from its input size*
            # (SchedulingContext.estimated_input_mb's fallback path).
            self.graph.store.input_mb[task._row] = task.input_size_mb
            if self.context is not None:
                self.context.invalidate_task(task.task_id)
                for successor in self.graph.successors(task.task_id):
                    self.context.invalidate_task(successor.task_id)

    def _on_task_ready(self, event: TaskReady) -> None:
        task = event.task
        self._prepare_ready(task)
        if event.via == "submit" or task.assigned_endpoint is None:
            # Queue for the next scheduling round; endpoint-pinned tasks
            # submitted up-front join the queue too and bypass the scheduler
            # when the round runs.
            self.placement.enqueue(task)
        else:
            # Endpoint-pinned task unlocked mid-run: go straight to staging.
            self.bus.publish(
                TaskPlaced.for_task(task, time=event.time, endpoint=task.assigned_endpoint)
            )

    def _handle_completion(self, record: TaskExecutionRecord) -> None:
        task = self.graph.get(record.task_id)
        self.bus.publish(
            TaskCompleted.for_task(
                task,
                time=self.clock.now(),
                endpoint=record.endpoint,
                cores=task.cores,
                record=record,
            )
        )

    def _handle_completions(self, records: List[TaskExecutionRecord]) -> None:
        """Batched completion delivery — the columnar fast path.

        One fabric round's records are folded into a single
        :class:`TasksCompleted` and a single :class:`TasksReady` event
        instead of N per-task bus cascades.  The scalar subscription chain
        (endpoint monitor, task monitor, metrics, scheduler, engine
        continuation, data plane, prefetcher) is inlined here *per record, in
        wiring order*, so every observer sees the identical call sequence the
        oracle path produces; the batch events' ``scalar_log`` carries the
        oracle's event-log entries in their exact interleaved order (the
        digest contract).  Cold paths — failed records and endpoint-pinned
        successors, which trigger their own bus cascades — flush the pending
        batch first so cross-event ordering is preserved.
        """
        if not records:
            return
        completed: List[Task] = []
        completed_records: List[TaskExecutionRecord] = []
        ready: List[Task] = []
        log: List[tuple] = []
        plane = self.data_manager if isinstance(self.data_manager, DataPlane) else None

        def flush() -> None:
            if not completed and not ready:
                return
            now = self.clock.now()
            if completed:
                self.bus.publish(
                    TasksCompleted(
                        time=now,
                        count=len(completed),
                        scalar_log=tuple(log),
                        tasks=tuple(completed),
                        records=tuple(completed_records),
                    )
                )
            if ready:
                self.bus.publish(
                    TasksReady(time=now, count=len(ready), tasks=tuple(ready))
                )
            completed.clear()
            completed_records.clear()
            ready.clear()
            log.clear()

        for record in records:
            task = self.graph.get(record.task_id)
            if not record.success:
                # Failure ladder: retries / reassignment / terminal failure
                # publish scalar events of their own — run the oracle path.
                flush()
                self._handle_completion(record)
                continue
            now = self.clock.now()
            log.append((round(now, 9), "TaskCompleted", task.name, record.endpoint, True))
            completed.append(task)
            completed_records.append(record)
            # The TaskCompleted subscription chain, in wiring order.
            self.endpoint_monitor.record_completion(record.endpoint, cores=task.cores)
            self.task_monitor.observe_task(record)
            self.metrics.record_completion(
                record.endpoint, record.function_name, record.success
            )
            self.scheduler.on_task_completed(task, record)
            newly_ready = self._apply_success(task, record)
            if plane is not None:
                plane.release_task(record.task_id)
            if self.prefetcher is not None:
                self.prefetcher.on_predecessor_progress(record.task_id)
            pinned: List[Task] = []
            for ready_task in newly_ready:
                log.append((round(now, 9), "TaskReady", ready_task.name))
                ready.append(ready_task)
                self._prepare_ready(ready_task)
                if ready_task.assigned_endpoint is None:
                    self.placement.enqueue(ready_task)
                else:
                    pinned.append(ready_task)
            if pinned:
                # Endpoint-pinned successors go straight to staging via
                # TaskPlaced; their cascade must observe the batch first, and
                # the whole group is enqueued before any cascade runs —
                # exactly the oracle's queue order.
                flush()
                self.bus.publish_many(
                    TaskPlaced.for_task(t, time=now, endpoint=t.assigned_endpoint)
                    for t in pinned
                )
        flush()

    def _on_task_completed(self, event: TaskCompleted) -> None:
        """Engine continuation: runs after every completion observer."""
        task, record = event.task, event.record
        if not record.success:
            self.failure.handle_execution_failure(task, record)
            return
        newly_ready = self._apply_success(task, record)
        for ready_task in newly_ready:
            self.bus.publish(
                TaskReady.for_task(ready_task, time=self.clock.now(), via="dependencies")
            )

    def _apply_success(self, task: Task, record: TaskExecutionRecord) -> List[Task]:
        """State/bookkeeping effects of one successful completion.

        Everything the engine continuation does short of announcing the
        newly-ready successors (returned instead): the scalar path publishes
        per-task :class:`TaskReady` events, the columnar path folds them into
        the round's batch.
        """
        task.timestamps.started = record.started_at
        # Register output data produced on the endpoint.
        task.output_files = []
        result_value: Any = record.result
        if record.output_mb > 0:
            file_cls = RsyncFile if self.config.transfer_mechanism == "rsync" else GlobusFile
            output = file_cls(
                f"{task.task_id}.out", size_mb=record.output_mb, location=record.endpoint
            )
            # Register the produced replica with the data layer: a no-op for
            # the FIFO manager (the location is already set), but the data
            # plane charges it against the endpoint's storage budget.
            self.data_manager.register_output(output, record.endpoint)
            task.output_files.append(output)
            if result_value is None:
                result_value = output
        if isinstance(record.result, RemoteFile):
            self.data_manager.register_output(record.result, record.endpoint)
            task.output_files.append(record.result)

        task.result = result_value
        if self.context is not None:
            # Evict the finished task's own entries (never queried again in a
            # static DAG) so the caches — and the array-backed matrices,
            # whose row is recycled — stay bounded by the live task set.
            self.context.release_task(task.task_id)
            if task.output_files:
                # A completed task with output changes its consumers'
                # input-size estimates (they now see real files instead of
                # predictions); a task without output leaves them on the
                # prediction path, whose cached value is still exact.
                for successor in self.graph.successors(task.task_id):
                    self.context.invalidate_task(successor.task_id)
        newly_ready = self.graph.mark_completed(task.task_id, now=record.completed_at)
        task.future.set_result(result_value)
        if task.dependencies:
            # Output lifecycle: this completion may have been the last read
            # of its parents' outputs — release their storage protection,
            # and *prune* fully-consumed entries so the live consumer map
            # stays O(active tasks), not O(all-time tasks).
            plane_store = (
                self.data_manager.store
                if isinstance(self.data_manager, DataPlane)
                else None
            )
            for dep in sorted(task.dependencies):
                remaining = self._consumer_counts.get(dep, 0) - 1
                if remaining > 0:
                    self._consumer_counts[dep] = remaining
                else:
                    self._consumer_counts.pop(dep, None)
                if plane_store is not None and remaining <= 0 and dep in self.graph:
                    for file in self.graph.get(dep).output_files:
                        plane_store.mark_expendable(file)
        return newly_ready

    def _on_transfer_result(self, result: TransferResult, concurrency: int) -> None:
        self.task_monitor.observe_transfer(result, concurrency)
        self.transfer_profiler.observe(result, concurrency)
