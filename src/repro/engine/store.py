"""Struct-of-arrays task store — the columnar engine core.

The scheduler's hot path went columnar in ``sched/vector.py`` (numpy
prediction matrices keyed by stable int rows); this module applies the same
treatment to the *engine's* task state.  A :class:`TaskStore` keeps every
task's state code, life-cycle timestamps, core count, input size, priority
and assigned endpoint in flat numpy arrays keyed by a stable integer row
minted at insertion.  :class:`~repro.core.dag.Task` objects stay around as
the object API, but become lazy views: their state/endpoint/priority setters
and their :class:`~repro.core.dag.TaskTimestamps` mirror every write into
the arrays, so bulk queries — state counts, ready-set extraction, wait-time
scans, per-endpoint staged/undispatched demand — are array reductions
instead of Python loops over task objects.

Endpoints are interned to small ints; per-endpoint aggregates (staged
workers' worth of tasks, tasks awaiting dispatch) are maintained
incrementally in O(1) per state or endpoint change, so the serving layer's
per-round demand queries are O(endpoints) regardless of task count.

Rows are never recycled: a task graph only grows (tasks reach terminal
states but are not removed), so the arrays are bounded by the all-time task
count of one workflow, exactly like the object dict they shadow.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.dag import TIMESTAMP_FIELDS, TaskState

__all__ = ["TaskStore"]

#: Stable int code per state, in declaration order.
STATE_CODES: Dict[TaskState, int] = {state: i for i, state in enumerate(TaskState)}
_STATES: List[TaskState] = list(TaskState)

_PENDING_DISPATCH = frozenset(
    {
        STATE_CODES[TaskState.SCHEDULED],
        STATE_CODES[TaskState.STAGING],
        STATE_CODES[TaskState.STAGED],
    }
)
_STAGED = STATE_CODES[TaskState.STAGED]
_TERMINAL_CODES = (
    STATE_CODES[TaskState.COMPLETED],
    STATE_CODES[TaskState.FAILED],
    STATE_CODES[TaskState.CANCELLED],
)

_GROW = 1024


class TaskStore:
    """Columnar (struct-of-arrays) mirror of one task graph's task state."""

    def __init__(self) -> None:
        self._capacity = _GROW
        self._size = 0
        self.state = np.full(self._capacity, STATE_CODES[TaskState.PENDING], dtype=np.int8)
        self.cores = np.ones(self._capacity, dtype=np.int32)
        self.input_mb = np.zeros(self._capacity, dtype=np.float64)
        self.priority = np.zeros(self._capacity, dtype=np.float64)
        #: Interned endpoint index (-1 = unassigned).
        self.endpoint = np.full(self._capacity, -1, dtype=np.int32)
        self.timestamps = {
            name: np.full(self._capacity, np.nan, dtype=np.float64)
            for name in TIMESTAMP_FIELDS
        }

        self._ids: List[str] = []
        self._rows: Dict[str, int] = {}

        # Endpoint interning + incremental per-endpoint aggregates.
        self._endpoint_names: List[str] = []
        self._endpoint_index: Dict[str, int] = {}
        self._staged_cores = np.zeros(0, dtype=np.int64)
        self._pending_dispatch = np.zeros(0, dtype=np.int64)

        # Incremental per-state task counts.
        self._state_counts = np.zeros(len(_STATES), dtype=np.int64)

    # --------------------------------------------------------------- basics
    def __len__(self) -> int:
        return self._size

    def row_of(self, task_id: str) -> int:
        return self._rows[task_id]

    def task_id_of(self, row: int) -> str:
        return self._ids[row]

    def intern_endpoint(self, name: str) -> int:
        idx = self._endpoint_index.get(name)
        if idx is None:
            idx = len(self._endpoint_names)
            self._endpoint_index[name] = idx
            self._endpoint_names.append(name)
            grown = np.zeros(idx + 1, dtype=np.int64)
            grown[: len(self._staged_cores)] = self._staged_cores
            self._staged_cores = grown
            grown = np.zeros(idx + 1, dtype=np.int64)
            grown[: len(self._pending_dispatch)] = self._pending_dispatch
            self._pending_dispatch = grown
        return idx

    def _grow(self) -> None:
        new_capacity = self._capacity + max(_GROW, self._capacity // 2)
        for name in ("state", "cores", "input_mb", "priority", "endpoint"):
            old = getattr(self, name)
            fill = -1 if name == "endpoint" else 0
            grown = np.full(new_capacity, fill, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)
        for name, old in self.timestamps.items():
            grown = np.full(new_capacity, np.nan, dtype=np.float64)
            grown[: self._size] = old[: self._size]
            self.timestamps[name] = grown
        self._capacity = new_capacity

    # ------------------------------------------------------------- mutation
    def add(self, task_id: str, *, state: TaskState, cores: int, input_mb: float,
            priority: float, endpoint: Optional[str]) -> int:
        """Register a task and return its stable row index."""
        if self._size == self._capacity:
            self._grow()
        row = self._size
        self._size += 1
        self._ids.append(task_id)
        self._rows[task_id] = row
        code = STATE_CODES[state]
        self.state[row] = code
        self.cores[row] = cores
        self.input_mb[row] = input_mb
        self.priority[row] = priority
        ep = -1 if endpoint is None else self.intern_endpoint(endpoint)
        self.endpoint[row] = ep
        self._state_counts[code] += 1
        if ep >= 0:
            self._account(row, 0, code, -1, ep)
        return row

    def set_state(self, row: int, state: TaskState) -> None:
        """Move a row to ``state``, updating counts and endpoint aggregates."""
        old = int(self.state[row])
        new = STATE_CODES[state]
        if old == new:
            return
        self.state[row] = new
        self._state_counts[old] -= 1
        self._state_counts[new] += 1
        ep = int(self.endpoint[row])
        if ep >= 0:
            self._account(row, old, new, ep, ep)

    def set_endpoint(self, row: int, endpoint: Optional[str]) -> None:
        old = int(self.endpoint[row])
        new = -1 if endpoint is None else self.intern_endpoint(endpoint)
        if old == new:
            return
        self.endpoint[row] = new
        code = int(self.state[row])
        self._account(row, code, code, old, new)

    def _account(self, row: int, old_code: int, new_code: int, old_ep: int, new_ep: int) -> None:
        """Incrementally maintain the per-endpoint demand aggregates."""
        if old_ep >= 0:
            if old_code in _PENDING_DISPATCH:
                self._pending_dispatch[old_ep] -= 1
            if old_code == _STAGED:
                self._staged_cores[old_ep] -= int(self.cores[row])
        if new_ep >= 0:
            if new_code in _PENDING_DISPATCH:
                self._pending_dispatch[new_ep] += 1
            if new_code == _STAGED:
                self._staged_cores[new_ep] += int(self.cores[row])

    def set_timestamp(self, row: int, name: str, value: Optional[float]) -> None:
        self.timestamps[name][row] = np.nan if value is None else value

    def get_timestamp(self, row: int, name: str) -> Optional[float]:
        value = self.timestamps[name][row]
        return None if np.isnan(value) else float(value)

    # -------------------------------------------------------------- queries
    def state_count(self, state: TaskState) -> int:
        return int(self._state_counts[STATE_CODES[state]])

    def counts(self) -> Dict[str, int]:
        """Non-zero task counts per state value, in state declaration order."""
        return {
            _STATES[code].value: int(count)
            for code, count in enumerate(self._state_counts)
            if count
        }

    def terminal_count(self) -> int:
        return int(sum(self._state_counts[code] for code in _TERMINAL_CODES))

    def rows_in_states(self, *states: TaskState) -> np.ndarray:
        """Row indices of tasks in any of ``states``, in insertion order."""
        view = self.state[: self._size]
        codes = [STATE_CODES[s] for s in states]
        mask = view == codes[0]
        for code in codes[1:]:
            mask |= view == code
        return np.nonzero(mask)[0]

    def wait_values(self) -> np.ndarray:
        """``max(0, started - ready)`` per task with both stamps, row order.

        Byte-for-byte the values the scalar scan over ``task.timestamps``
        produces: identical IEEE subtraction on the identical float64 values,
        in the identical (insertion) order.
        """
        ready = self.timestamps["ready"][: self._size]
        started = self.timestamps["started"][: self._size]
        mask = ~np.isnan(ready) & ~np.isnan(started)
        return np.maximum(0.0, started[mask] - ready[mask])

    def wait_times(self) -> List[float]:
        """:meth:`wait_values` as a plain Python list."""
        return self.wait_values().tolist()

    def staged_demand(self) -> Dict[str, int]:
        """Workers' worth of STAGED tasks per endpoint (non-zero entries)."""
        rows = np.nonzero(self._staged_cores > 0)[0]
        return {self._endpoint_names[i]: int(self._staged_cores[i]) for i in rows}

    def undispatched_by_endpoint(self) -> Dict[str, int]:
        """Tasks placed but not yet dispatched, per endpoint (non-zero)."""
        rows = np.nonzero(self._pending_dispatch > 0)[0]
        return {self._endpoint_names[i]: int(self._pending_dispatch[i]) for i in rows}

    @property
    def undispatched_count(self) -> int:
        return int(self._pending_dispatch.sum())
