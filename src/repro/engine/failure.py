"""Failure coordinator — the fault-tolerance policy of §IV-G.

Execution failures walk a three-step ladder:

1. **retry** — while ``attempts <= max_task_retries`` the task is re-staged
   to the endpoint the scheduler chose (its data is already there);
2. **reassign** — afterwards it moves to the most *reliable* endpoint (by
   observed success rate) that has not failed it yet;
3. **fail** — when every endpoint failed it, the task is terminal and its
   future carries a :class:`~repro.core.exceptions.TaskFailedError`.

Staging failures (the data manager exhausted its transfer retries) are
terminal immediately and carry a
:class:`~repro.core.exceptions.TransferFailedError`.

Either terminal outcome is announced as a
:class:`~repro.engine.events.TaskFailed` event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.dag import Task, TaskState
from repro.core.exceptions import TaskFailedError, TransferFailedError
from repro.engine.events import StagingDone, TaskFailed, TaskPlaced
from repro.faas.types import TaskExecutionRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExecutionEngine

__all__ = ["FailureCoordinator"]


class FailureCoordinator:
    """Retry, reassign, then fail (§IV-G)."""

    def __init__(self, engine: "ExecutionEngine") -> None:
        self._engine = engine
        engine.bus.subscribe(StagingDone, self._on_staging_done)

    # ------------------------------------------------------ staging failures
    def _on_staging_done(self, event: StagingDone) -> None:
        if not event.failed:
            return
        engine = self._engine
        task = event.task
        engine.index.clear_undispatched(task.task_id)
        if engine.context is not None:
            engine.context.invalidate_task(task.task_id)
        engine.graph.set_state(task.task_id, TaskState.FAILED, now=engine.clock.now())
        error = TransferFailedError(
            event.ticket_id, "unknown", event.endpoint, engine.config.max_transfer_retries
        )
        task.future.set_exception(error)
        engine.bus.publish(
            TaskFailed.for_task(
                task,
                time=engine.clock.now(),
                endpoint=event.endpoint,
                error=str(error),
                attempts=task.attempts,
            )
        )

    # ---------------------------------------------------- execution failures
    def handle_execution_failure(self, task: Task, record: TaskExecutionRecord) -> None:
        """Apply the retry / reassign / fail ladder to a failed execution."""
        engine = self._engine
        # Record when the failed attempt actually started so retry latency is
        # measurable (the success path records it in the completion handler).
        task.timestamps.started = record.started_at
        endpoint = record.endpoint
        if endpoint not in task.failed_endpoints:
            task.failed_endpoints.append(endpoint)
        all_endpoints = engine.fabric.endpoint_names()

        if task.attempts <= engine.config.max_task_retries:
            # Retry on the endpoint chosen by the scheduler (data already there).
            retry_endpoint = endpoint
        else:
            candidates = [e for e in all_endpoints if e not in task.failed_endpoints]
            if not candidates:
                if engine.context is not None:
                    engine.context.invalidate_task(task.task_id)
                engine.graph.set_state(task.task_id, TaskState.FAILED, now=engine.clock.now())
                error = TaskFailedError(
                    task.task_id, record.error or "unknown error", task.attempts
                )
                task.future.set_exception(error)
                engine.bus.publish(
                    TaskFailed.for_task(
                        task,
                        time=engine.clock.now(),
                        endpoint=endpoint,
                        error=str(error),
                        attempts=task.attempts,
                    )
                )
                return
            retry_endpoint = engine.task_monitor.most_reliable_endpoint(candidates)
        engine.bus.publish(
            TaskPlaced.for_task(task, time=engine.clock.now(), endpoint=retry_endpoint)
        )
