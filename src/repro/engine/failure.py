"""Failure coordinator — the fault-tolerance policy of §IV-G.

Execution failures walk a three-step ladder:

1. **retry** — while ``attempts <= max_task_retries`` the task is re-staged
   to the endpoint the scheduler chose (its data is already there);
2. **reassign** — afterwards it moves to the most *reliable* endpoint (by
   observed success rate) that has not failed it yet;
3. **fail** — when every endpoint failed it, the task is terminal and its
   future carries a :class:`~repro.core.exceptions.TaskFailedError`.

Staging failures (the data manager exhausted its transfer retries) are
terminal immediately and carry a
:class:`~repro.core.exceptions.TransferFailedError`.

Either terminal outcome is announced as a
:class:`~repro.engine.events.TaskFailed` event.

The coordinator also reacts to endpoint *dynamics*: when an
:class:`~repro.engine.events.EndpointCrashed` event arrives, tasks already
placed on (but not yet dispatched to) the dead endpoint are immediately
re-placed on a surviving endpoint instead of staging data toward a corpse,
and the retry step of the ladder skips endpoints the monitor knows to be
offline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.dag import Task, TaskState
from repro.core.exceptions import TaskFailedError, TransferFailedError
from repro.engine.events import EndpointCrashed, StagingDone, TaskFailed, TaskPlaced
from repro.faas.types import TaskExecutionRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExecutionEngine

__all__ = ["FailureCoordinator"]

#: Placed-but-undispatched states a crash forces back through placement.
_REASSIGNABLE = (TaskState.SCHEDULED, TaskState.STAGING, TaskState.STAGED)


class FailureCoordinator:
    """Retry, reassign, then fail (§IV-G)."""

    def __init__(self, engine: "ExecutionEngine") -> None:
        self._engine = engine
        engine.bus.subscribe(StagingDone, self._on_staging_done)
        engine.bus.subscribe(EndpointCrashed, self._on_endpoint_crashed)

    # ------------------------------------------------------ staging failures
    def _on_staging_done(self, event: StagingDone) -> None:
        if not event.failed:
            return
        engine = self._engine
        task = event.task
        engine.index.clear_undispatched(task.task_id)
        if engine.context is not None:
            engine.context.release_task(task.task_id)
        engine.graph.set_state(task.task_id, TaskState.FAILED, now=engine.clock.now())
        error = TransferFailedError(
            event.ticket_id, "unknown", event.endpoint, engine.config.max_transfer_retries
        )
        task.future.set_exception(error)
        engine.bus.publish(
            TaskFailed.for_task(
                task,
                time=engine.clock.now(),
                endpoint=event.endpoint,
                error=str(error),
                attempts=task.attempts,
            )
        )

    # ------------------------------------------------------------- dynamics
    def _online_endpoints(self) -> List[str]:
        """Endpoints the monitor's mocked view believes are online."""
        monitor = self._engine.endpoint_monitor
        return [name for name in monitor.endpoint_names() if monitor.mock(name).online]

    def _on_endpoint_crashed(self, event: EndpointCrashed) -> None:
        """Re-place undispatched tasks stranded on a crashed endpoint.

        Dispatched/running tasks surface as failure records through the
        ladder below; the placed-but-undispatched ones would otherwise keep
        staging data toward the dead endpoint until a periodic re-scheduling
        pass noticed.
        """
        engine = self._engine
        crashed = event.endpoint
        survivors = [e for e in self._online_endpoints() if e != crashed]
        if not survivors:
            # Nowhere to go: leave the tasks placed, the stall diagnosis and
            # a later rejoin (or scale-out) will resolve them.
            return
        now = engine.clock.now()
        # Loop-invariant: reliability cannot change while re-placing.  The
        # pile-on onto one survivor is deliberate — the next scheduling /
        # re-scheduling pass rebalances with full capacity knowledge.
        target = engine.task_monitor.most_reliable_endpoint(survivors)
        for task_id in list(engine.index.undispatched_ids()):
            if task_id not in engine.graph:
                continue
            task = engine.graph.get(task_id)
            if task.assigned_endpoint != crashed or task.state not in _REASSIGNABLE:
                continue
            # The task's placement claim follows it off the dead endpoint;
            # a claim left behind would keep the endpoint's rejoined
            # capacity looking spoken-for to every later scheduling pass.
            engine.scheduler.transfer_claim(crashed, target)
            engine.bus.publish(TaskPlaced.for_task(task, time=now, endpoint=target))

    # ---------------------------------------------------- execution failures
    def handle_execution_failure(self, task: Task, record: TaskExecutionRecord) -> None:
        """Apply the retry / reassign / fail ladder to a failed execution."""
        engine = self._engine
        # Record when the failed attempt actually started so retry latency is
        # measurable (the success path records it in the completion handler).
        task.timestamps.started = record.started_at
        endpoint = record.endpoint
        if endpoint not in task.failed_endpoints:
            task.failed_endpoints.append(endpoint)
        all_endpoints = engine.fabric.endpoint_names()
        online = set(self._online_endpoints())

        # Per-task retry budget (authoring API's ``@job(retries=...)``) wins
        # over the config-wide default when set.
        retry_limit = (
            task.max_retries
            if task.max_retries is not None
            else engine.config.max_task_retries
        )
        if task.attempts <= retry_limit and endpoint in online:
            # Retry on the endpoint chosen by the scheduler (data already there).
            retry_endpoint = endpoint
        else:
            # Reassign: prefer online endpoints that have not failed the task;
            # fall back to any not-yet-failed endpoint (it may rejoin before
            # the dispatch arrives, and a dead one fails fast and is excluded
            # on the next rung).
            candidates = [
                e for e in all_endpoints if e not in task.failed_endpoints and e in online
            ]
            if not candidates:
                candidates = [e for e in all_endpoints if e not in task.failed_endpoints]
            if not candidates:
                if engine.context is not None:
                    engine.context.release_task(task.task_id)
                engine.graph.set_state(task.task_id, TaskState.FAILED, now=engine.clock.now())
                error = TaskFailedError(
                    task.task_id, record.error or "unknown error", task.attempts
                )
                task.future.set_exception(error)
                engine.bus.publish(
                    TaskFailed.for_task(
                        task,
                        time=engine.clock.now(),
                        endpoint=endpoint,
                        error=str(error),
                        attempts=task.attempts,
                    )
                )
                return
            retry_endpoint = engine.task_monitor.most_reliable_endpoint(candidates)
        # The failed attempt's dispatch already released the task's claim;
        # re-placing makes it undispatched again, so take a fresh one the
        # retry's own dispatch will release.
        engine.scheduler.transfer_claim(None, retry_endpoint)
        engine.bus.publish(
            TaskPlaced.for_task(task, time=engine.clock.now(), endpoint=retry_endpoint)
        )
