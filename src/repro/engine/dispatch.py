"""Dispatch coordinator — delay-mechanism gating and fabric submission.

Staged tasks wait in per-endpoint client queues.  Each pump round the
coordinator walks every queue head and asks the scheduler whether the task
may leave (DHA's delay mechanism hooks in through
:meth:`~repro.sched.base.Scheduler.should_dispatch`); dispatching builds the
execution request, submits it to the fabric and announces a
:class:`~repro.engine.events.TaskDispatched` event, which the endpoint
monitor (mock update) and the scheduler (claim release) subscribe to.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Deque, Dict

from repro.core.dag import Task, TaskState
from repro.core.exceptions import UniFaaSError
from repro.engine.events import StagingDone, TaskDispatched

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExecutionEngine

__all__ = ["DispatchCoordinator"]


class DispatchCoordinator:
    """Owns the per-endpoint staged queues and the fabric hand-off."""

    def __init__(self, engine: "ExecutionEngine") -> None:
        self._engine = engine
        self._staged_queues: Dict[str, Deque[str]] = defaultdict(deque)
        engine.bus.subscribe(StagingDone, self._on_staging_done)

    # ---------------------------------------------------------------- events
    def _on_staging_done(self, event: StagingDone) -> None:
        if event.failed:
            return  # the failure coordinator owns this outcome
        self._staged_queues[event.endpoint].append(event.task_id)

    # ------------------------------------------------------------------ pump
    def dispatch_staged(self, force: bool = False) -> bool:
        """Dispatch queue heads the scheduler clears; True when any left."""
        engine = self._engine
        dispatched_any = False
        for endpoint, queue in self._staged_queues.items():
            while queue:
                task_id = queue[0]
                if task_id not in engine.graph:
                    queue.popleft()
                    continue
                task = engine.graph.get(task_id)
                if task.state != TaskState.STAGED or task.assigned_endpoint != endpoint:
                    # Task was re-scheduled elsewhere or already handled.
                    queue.popleft()
                    continue
                if not force and not engine.scheduler.should_dispatch(task):
                    break
                queue.popleft()
                self.dispatch(task)
                dispatched_any = True
        return dispatched_any

    def dispatch(self, task: Task) -> None:
        engine = self._engine
        endpoint = task.assigned_endpoint
        resolved_args, resolved_kwargs = None, None
        if task.function.callable is not None:
            # Resolve future arguments for real (local) execution; harmless in
            # simulation mode where the callable is never invoked.
            try:
                resolved_args, resolved_kwargs = task.resolved_args(engine.graph)
            except UniFaaSError:
                resolved_args, resolved_kwargs = task.args, dict(task.kwargs)
        request = engine.fabric.build_request(task, resolved_args, resolved_kwargs)
        task.attempts += 1
        engine.graph.set_state(task.task_id, TaskState.DISPATCHED, now=engine.clock.now())
        engine.index.clear_undispatched(task.task_id)
        engine.fabric.submit(endpoint, request)
        engine.bus.publish(
            TaskDispatched.for_task(
                task,
                time=engine.clock.now(),
                endpoint=endpoint,
                cores=task.cores,
            )
        )
