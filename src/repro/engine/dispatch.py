"""Dispatch coordinator — delay-mechanism gating and fabric submission.

Staged tasks wait in per-endpoint client queues.  Each pump round the
coordinator walks every queue head and asks the scheduler whether the task
may leave (DHA's delay mechanism hooks in through
:meth:`~repro.sched.base.Scheduler.should_dispatch`); dispatching builds the
execution request, submits it to the fabric and announces a
:class:`~repro.engine.events.TaskDispatched` event, which the endpoint
monitor (mock update) and the scheduler (claim release) subscribe to.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.dag import Task, TaskState
from repro.core.exceptions import UniFaaSError
from repro.engine.events import StagingDone, TaskDispatched, TaskPlaced, TasksDispatched

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExecutionEngine

__all__ = ["DispatchCoordinator"]


class DispatchCoordinator:
    """Owns the per-endpoint staged queues and the fabric hand-off."""

    def __init__(self, engine: "ExecutionEngine") -> None:
        self._engine = engine
        self._staged_queues: Dict[str, Deque[str]] = defaultdict(deque)
        #: Incremental mirror of the *live* queue entries — ``task_id ->
        #: (endpoint, cores)`` plus per-endpoint core sums — so the serving
        #: layer's per-round demand query is O(endpoints), not O(queued).
        #: Entries leave on dispatch, on any stale pop, and on re-placement
        #: (a new TaskPlaced supersedes the old queue position).
        self._staged_entries: Dict[str, Tuple[str, int]] = {}
        self._staged_counts: Dict[str, int] = {}
        engine.bus.subscribe(StagingDone, self._on_staging_done)
        engine.bus.subscribe(TaskPlaced, self._on_task_placed)

    # ---------------------------------------------------------------- events
    def _on_staging_done(self, event: StagingDone) -> None:
        if event.failed:
            return  # the failure coordinator owns this outcome
        self._staged_queues[event.endpoint].append(event.task_id)
        self._forget(event.task_id)  # a retry may still sit in an old queue
        cores = event.task.cores
        self._staged_entries[event.task_id] = (event.endpoint, cores)
        self._staged_counts[event.endpoint] = (
            self._staged_counts.get(event.endpoint, 0) + cores
        )

    def _on_task_placed(self, event: TaskPlaced) -> None:
        # A (re-)placement supersedes any staged-queue position the task
        # still holds; the stale queue entry itself is popped lazily.
        self._forget(event.task_id)

    def _forget(self, task_id: str) -> None:
        entry = self._staged_entries.pop(task_id, None)
        if entry is None:
            return
        endpoint, cores = entry
        remaining = self._staged_counts.get(endpoint, 0) - cores
        if remaining > 0:
            self._staged_counts[endpoint] = remaining
        else:
            self._staged_counts.pop(endpoint, None)

    # ------------------------------------------------------------------ pump
    def dispatch_staged(
        self, force: bool = False, budget: Optional[Mapping[str, int]] = None
    ) -> bool:
        """Dispatch queue heads the scheduler clears; True when any left.

        ``budget`` (multi-workflow serving) bounds how many workers' worth of
        tasks may leave per endpoint this round — the arbitration policy's
        per-tenant slice of the federation's free capacity.  Endpoints absent
        from the budget get nothing; ``None`` (single-workflow) is unbounded.
        """
        engine = self._engine
        dispatched_any = False
        #: Columnar path: dispatches of the round fold into one
        #: TasksDispatched event instead of N per-task publishes.
        batch: Optional[List[Task]] = [] if engine._columnar else None
        batch_log: List[tuple] = []
        for endpoint, queue in self._staged_queues.items():
            allowance = None if budget is None else budget.get(endpoint, 0)
            while queue:
                task_id = queue[0]
                if task_id not in engine.graph:
                    queue.popleft()
                    self._forget(task_id)
                    continue
                task = engine.graph.get(task_id)
                if task.state != TaskState.STAGED or task.assigned_endpoint != endpoint:
                    # Task was re-scheduled elsewhere or already handled.
                    queue.popleft()
                    if self._staged_entries.get(task_id, (None,))[0] == endpoint:
                        self._forget(task_id)
                    continue
                if allowance is not None and allowance < task.cores:
                    break
                if not force and not engine.scheduler.should_dispatch(task):
                    break
                queue.popleft()
                self._forget(task_id)
                self.dispatch(task, batch=batch, batch_log=batch_log)
                if allowance is not None:
                    allowance -= task.cores
                dispatched_any = True
        if batch:
            engine.bus.publish(
                TasksDispatched(
                    time=engine.clock.now(),
                    count=len(batch),
                    scalar_log=tuple(batch_log),
                    tasks=tuple(batch),
                )
            )
        return dispatched_any

    def staged_demand(self) -> Dict[str, int]:
        """Workers' worth of dispatchable staged tasks per endpoint.

        What this workflow would dispatch right now given unlimited budget —
        the demand the serving layer's arbitration policy allocates against.
        On the columnar path the counts come straight from the task store's
        incrementally-maintained per-endpoint staged-cores array; the dict
        mirror below is the scalar oracle (and still O(endpoints) per query).
        """
        if self._engine._columnar:
            return self._engine.graph.store.staged_demand()
        return {ep: cores for ep, cores in self._staged_counts.items() if cores > 0}

    def dispatch(
        self,
        task: Task,
        batch: Optional[List[Task]] = None,
        batch_log: Optional[List[tuple]] = None,
    ) -> None:
        engine = self._engine
        endpoint = task.assigned_endpoint
        resolved_args, resolved_kwargs = None, None
        if task.function.callable is not None:
            # Resolve future arguments for real (local) execution; harmless in
            # simulation mode where the callable is never invoked.
            try:
                resolved_args, resolved_kwargs = task.resolved_args(engine.graph)
            except UniFaaSError:
                resolved_args, resolved_kwargs = task.args, dict(task.kwargs)
        request = engine.fabric.build_request(task, resolved_args, resolved_kwargs)
        task.attempts += 1
        engine.graph.set_state(task.task_id, TaskState.DISPATCHED, now=engine.clock.now())
        engine.index.clear_undispatched(task.task_id)
        engine.fabric.submit(endpoint, request)
        if batch is None:
            engine.bus.publish(
                TaskDispatched.for_task(
                    task,
                    time=engine.clock.now(),
                    endpoint=endpoint,
                    cores=task.cores,
                )
            )
            return
        # Columnar path: run the TaskDispatched subscription chain inline
        # (same order the bus wiring delivers it) and fold the event into the
        # round's batch.
        now = engine.clock.now()
        batch_log.append((round(now, 9), "TaskDispatched", task.name, endpoint))
        batch.append(task)
        engine.endpoint_monitor.record_dispatch(endpoint, cores=task.cores)
        engine.scheduler.on_task_dispatched(task, endpoint)
        if engine.prefetcher is not None:
            engine.prefetcher.on_predecessor_progress(task.task_id)
