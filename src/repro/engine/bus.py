"""A synchronous, deterministic event bus.

The orchestration engine is single-threaded by design so that the same code
path runs identically on the discrete-event simulation substrate and on real
thread-pool endpoints.  The bus therefore delivers events *synchronously* —
``publish`` returns only after every handler ran — with two guarantees the
coordinators rely on:

* **Subscription order** — handlers for an event type run in the order they
  subscribed.  The engine wires monitors, metrics, the scheduler and its own
  continuations in the exact order the pre-refactor monolith invoked them.
* **FIFO cascades** — an event published from inside a handler is queued and
  delivered after the current event's remaining handlers, never recursively.
  Cascades of any depth are processed breadth-first in publication order, so
  a run's event sequence is a deterministic function of its inputs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Tuple, Type

from repro.engine.events import Event

__all__ = ["EventBus"]

Handler = Callable[[Event], None]

_EMPTY: Tuple[Handler, ...] = ()


class EventBus:
    """Synchronous publish/subscribe hub for :mod:`repro.engine.events`.

    Deliveries iterate immutable copy-on-write snapshots of the handler
    lists, rebuilt only when a subscription changes — not copied per event.
    A handler (un)subscribed *during* a delivery therefore takes effect from
    the next event on, never for the event in flight, exactly as the old
    copy-per-delivery behaviour guaranteed.
    """

    def __init__(self) -> None:
        self._handlers: Dict[Type[Event], List[Handler]] = {}
        self._any_handlers: List[Handler] = []
        #: Copy-on-write delivery snapshots (invalidated on subscription
        #: changes, shared by every delivery in between).
        self._snapshots: Dict[Type[Event], Tuple[Handler, ...]] = {}
        self._any_snapshot: Tuple[Handler, ...] = ()
        self._queue: Deque[Event] = deque()
        self._draining = False
        #: Total number of events delivered (diagnostics).
        self.published_count = 0

    # ---------------------------------------------------------- subscription
    def subscribe(self, event_type: Type[Event], handler: Handler) -> Handler:
        """Invoke ``handler`` for every event of exactly ``event_type``.

        Returns the handler so callers can keep a reference for
        :meth:`unsubscribe`.
        """
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"expected an Event subclass, got {event_type!r}")
        handlers = self._handlers.setdefault(event_type, [])
        handlers.append(handler)
        self._snapshots[event_type] = tuple(handlers)
        return handler

    def subscribe_all(self, handler: Handler) -> Handler:
        """Invoke ``handler`` for every event (before type-specific handlers)."""
        self._any_handlers.append(handler)
        self._any_snapshot = tuple(self._any_handlers)
        return handler

    def unsubscribe_all(self, handler: Handler) -> bool:
        """Remove an any-event handler; returns False when not subscribed."""
        try:
            self._any_handlers.remove(handler)
        except ValueError:
            return False
        self._any_snapshot = tuple(self._any_handlers)
        return True

    def handler_count(self, event_type: Type[Event] | None = None) -> int:
        """Number of subscribed handlers (teardown/restore regression hook).

        With ``event_type``, counts that type's handlers only; without,
        counts every type-specific handler plus the any-event handlers.
        """
        if event_type is not None:
            return len(self._handlers.get(event_type, []))
        return len(self._any_handlers) + sum(
            len(handlers) for handlers in self._handlers.values()
        )

    def unsubscribe(self, event_type: Type[Event], handler: Handler) -> bool:
        """Remove a handler; returns False when it was not subscribed."""
        handlers = self._handlers.get(event_type, [])
        try:
            handlers.remove(handler)
        except ValueError:
            return False
        self._snapshots[event_type] = tuple(handlers)
        return True

    # ----------------------------------------------------------- publication
    def publish(self, event: Event) -> None:
        """Deliver ``event`` to its subscribers (synchronously, in order).

        Re-entrant publishes are queued FIFO: when a handler publishes, the
        new event is delivered after the in-flight event finishes, keeping
        delivery order deterministic and stack depth bounded.
        """
        self._queue.append(event)
        if not self._draining:
            self._drain()

    def publish_many(self, events: Iterable[Event]) -> None:
        """Enqueue ``events`` together, then deliver.

        Equivalent to a handler publishing each event before any of them is
        delivered: the whole group is queued ahead of any cascade the first
        event's handlers publish.  The columnar completion path uses this to
        reproduce the oracle ordering when one completion unlocks several
        endpoint-pinned successors.
        """
        self._queue.extend(events)
        if not self._draining and self._queue:
            self._drain()

    def _drain(self) -> None:
        self._draining = True
        try:
            while self._queue:
                current = self._queue.popleft()
                self.published_count += 1
                for handler in self._any_snapshot:
                    handler(current)
                for handler in self._snapshots.get(type(current), _EMPTY):
                    handler(current)
        except BaseException:
            # A handler failed mid-cascade: drop the undelivered remainder so
            # a later, unrelated publish cannot replay stale events.
            self._queue.clear()
            raise
        finally:
            self._draining = False
