"""Placement coordinator — offering ready tasks to the scheduler.

One pump round of the engine offers every queued ready task to the scheduler
(the observe–predict–decide loop of §IV-D) and announces each decision as a
:class:`~repro.engine.events.TaskPlaced` event.  Endpoint-pinned tasks (the
``unifaas_endpoint`` hint) bypass the scheduler entirely.

The queue is an insertion-ordered index: placed tasks are deleted in O(1)
each instead of rebuilding the whole deque per round as the monolithic
client did.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING

from repro.core.dag import Task, TaskState
from repro.engine.events import TaskPlaced

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.core import ExecutionEngine

__all__ = ["PlacementCoordinator"]


class PlacementCoordinator:
    """Turns ready tasks into endpoint placements."""

    def __init__(self, engine: "ExecutionEngine") -> None:
        self._engine = engine

    def enqueue(self, task: Task) -> None:
        self._engine.index.enqueue(task)

    def schedule_ready(self) -> bool:
        """Offer queued ready tasks to the scheduler; True when any placed."""
        engine = self._engine
        index = engine.index
        if not index.queued_count:
            return False
        candidates = [t for t in index.queued_tasks() if t.state == TaskState.READY]
        if not candidates:
            return False

        # Endpoint-pinned tasks bypass the scheduler entirely (the common
        # case has none, so skip the second scan then).
        pinned = [t for t in candidates if t.assigned_endpoint is not None]
        unpinned = (
            candidates if not pinned else [t for t in candidates if t.assigned_endpoint is None]
        )

        placements = []
        if unpinned:
            t0 = _time.perf_counter()
            placements = engine.scheduler.schedule(unpinned)
            engine.metrics.record_scheduling_overhead(
                _time.perf_counter() - t0, len(placements) or len(unpinned)
            )

        placed = 0
        now = engine.clock.now()
        placed_ids = set()
        for placement in placements:
            task = engine.graph.get(placement.task_id)
            index.remove_queued(task.task_id)
            placed_ids.add(task.task_id)
            engine.bus.publish(TaskPlaced.for_task(task, time=now, endpoint=placement.endpoint))
            placed += 1
        for task in pinned:
            index.remove_queued(task.task_id)
            placed_ids.add(task.task_id)
            engine.bus.publish(
                TaskPlaced.for_task(task, time=now, endpoint=task.assigned_endpoint)
            )
            placed += 1

        # Ready tasks the scheduler left unplaced (no free capacity anywhere)
        # are the hottest prefetch candidates: their inputs can start moving
        # toward the hinted endpoint while they wait for a worker.
        if engine.prefetcher is not None and len(placements) < len(unpinned):
            for task in unpinned:
                if task.task_id not in placed_ids:
                    engine.prefetcher.consider_unplaced(task)
        return placed > 0
