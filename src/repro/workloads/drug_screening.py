"""Drug-screening workflow generator (Fig. 8 left, §VI).

The paper's drug-screening case study (derived from the IMPECCABLE /
SARS-CoV-2 lead-generation campaign) screens batches of candidate molecules
through a pipeline of docking, feature computation, fingerprinting, ML
scoring, filtering and simulation stages.  At full scale the workflow has
24 001 functions, 1 447 hours of total computation (≈220 s per task on
average) and touches 480.64 GB of data.

The generator reproduces those aggregate characteristics with a
batch-structured DAG:

* one ``prepare_receptor`` root task (type A),
* per molecule batch: ``dock`` (B) fans into ``compute_features`` (C) and
  ``compute_fingerprint`` (D), both feed ``ml_score`` (E), which feeds
  ``filter_hits`` (F), and promising hits run a ``simulate_complex`` (G)
  task — six tasks per batch, matching 1 + 6·4000 = 24 001 at scale 1.0.

Use ``scale`` to shrink the workflow proportionally (benchmarks default to a
few per cent so the whole suite stays fast); shapes and per-task costs are
unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.core.client import UniFaaSClient
from repro.data.remote_file import GlobusFile
from repro.workloads.spec import TaskTypeSpec, WorkloadInfo, make_task_type

__all__ = ["DRUG_SCREENING_TYPES", "build_drug_screening_workflow", "FULL_SCALE_BATCHES"]

#: Number of molecule batches at scale 1.0 (1 + 6 * 4000 = 24 001 tasks).
FULL_SCALE_BATCHES = 4000

#: Task types with durations chosen so the full-scale workflow averages
#: ≈220 s per task (paper: 1 447 h / 24 001 tasks) and data volumes summing
#: to ≈480 GB.
DRUG_SCREENING_TYPES = {
    "prepare_receptor": TaskTypeSpec(name="prepare_receptor", duration_s=120.0, output_mb=256.0),
    "dock": TaskTypeSpec(name="dock", duration_s=300.0, output_mb=30.0),
    "compute_features": TaskTypeSpec(name="compute_features", duration_s=150.0, output_mb=20.0),
    "compute_fingerprint": TaskTypeSpec(name="compute_fingerprint", duration_s=100.0, output_mb=10.0),
    "ml_score": TaskTypeSpec(name="ml_score", duration_s=250.0, output_mb=15.0),
    "filter_hits": TaskTypeSpec(name="filter_hits", duration_s=60.0, output_mb=5.0),
    "simulate_complex": TaskTypeSpec(name="simulate_complex", duration_s=460.0, output_mb=43.0),
}


def build_drug_screening_workflow(
    client: UniFaaSClient,
    *,
    scale: float = 1.0,
    batches: Optional[int] = None,
    molecule_library_mb: float = 4096.0,
    library_location: Optional[str] = None,
    jitter: float = 0.0,
) -> WorkloadInfo:
    """Compose the drug-screening DAG through ``client``.

    Parameters
    ----------
    scale:
        Fraction of the paper's 4 000 molecule batches to generate (ignored
        when ``batches`` is given explicitly).
    molecule_library_mb:
        Size of the external molecule library file every docking batch reads.
    library_location:
        Endpoint that initially holds the library (defaults to the first
        configured executor).
    """
    if batches is None:
        if not 0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        batches = max(1, int(round(FULL_SCALE_BATCHES * scale)))
    if batches < 1:
        raise ValueError("batches must be >= 1")

    types = DRUG_SCREENING_TYPES
    fns = {name: make_task_type(spec, jitter) for name, spec in types.items()}
    info = WorkloadInfo(name="drug_screening", scale=scale)

    location = library_location or client.config.executors[0].endpoint
    library = GlobusFile("molecule_library.smi", size_mb=molecule_library_mb, location=location)
    info.total_data_mb += molecule_library_mb

    with client:
        receptor = fns["prepare_receptor"](library)
        info.register(
            receptor,
            "prepare_receptor",
            types["prepare_receptor"].duration_s,
            types["prepare_receptor"].output_mb,
        )
        for _ in range(batches):
            docked = fns["dock"](receptor)
            info.register(docked, "dock", types["dock"].duration_s, types["dock"].output_mb)

            features = fns["compute_features"](docked)
            info.register(
                features,
                "compute_features",
                types["compute_features"].duration_s,
                types["compute_features"].output_mb,
            )
            fingerprint = fns["compute_fingerprint"](docked)
            info.register(
                fingerprint,
                "compute_fingerprint",
                types["compute_fingerprint"].duration_s,
                types["compute_fingerprint"].output_mb,
            )

            score = fns["ml_score"](features, fingerprint)
            info.register(score, "ml_score", types["ml_score"].duration_s, types["ml_score"].output_mb)

            hits = fns["filter_hits"](score)
            info.register(
                hits, "filter_hits", types["filter_hits"].duration_s, types["filter_hits"].output_mb
            )

            simulation = fns["simulate_complex"](hits)
            info.register(
                simulation,
                "simulate_complex",
                types["simulate_complex"].duration_s,
                types["simulate_complex"].output_mb,
            )
    return info
