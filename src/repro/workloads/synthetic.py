"""Synthetic workloads: CPU-stress tasks and random DAGs.

The scalability experiment (Fig. 6) uses large bags of fixed-duration
compute-intensive tasks; the elasticity experiment (Fig. 7) uses batches of
stress tasks pinned to specific endpoints; tests use small random DAGs to
exercise the engine against arbitrary dependency structures.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.client import UniFaaSClient
from repro.core.client import ENDPOINT_HINT_KWARG
from repro.workloads.spec import TaskTypeSpec, WorkloadInfo, make_task_type

__all__ = ["build_stress_workload", "build_random_dag", "stress_task_type"]


def stress_task_type(duration_s: float, output_mb: float = 0.0, name: Optional[str] = None) -> TaskTypeSpec:
    """A compute-intensive task of fixed duration (the paper's while-loop stress task)."""
    return TaskTypeSpec(
        name=name or f"stress_{duration_s:g}s",
        duration_s=duration_s,
        output_mb=output_mb,
    )


def build_stress_workload(
    client: UniFaaSClient,
    count: int,
    duration_s: float,
    *,
    output_mb: float = 0.0,
    endpoint: Optional[str] = None,
    jitter: float = 0.0,
) -> WorkloadInfo:
    """Submit ``count`` independent stress tasks of ``duration_s`` seconds.

    ``endpoint`` pins every task to one endpoint (used by the elasticity
    experiment, where each endpoint runs its own task type).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    spec = stress_task_type(duration_s, output_mb)
    fn = make_task_type(spec, jitter)
    info = WorkloadInfo(name=spec.name)
    kwargs = {ENDPOINT_HINT_KWARG: endpoint} if endpoint else {}
    with client:
        for _ in range(count):
            future = fn(**kwargs)
            info.register(future, spec.name, duration_s, output_mb)
    return info


def build_random_dag(
    client: UniFaaSClient,
    task_count: int,
    *,
    max_parents: int = 3,
    duration_range: tuple = (1.0, 10.0),
    output_range_mb: tuple = (0.0, 20.0),
    seed: int = 0,
) -> WorkloadInfo:
    """Submit a random DAG (used by property-style integration tests)."""
    if task_count < 1:
        raise ValueError("task_count must be >= 1")
    rng = np.random.default_rng(seed)
    info = WorkloadInfo(name="random_dag")
    futures: List = []
    with client:
        for index in range(task_count):
            duration = float(rng.uniform(*duration_range))
            output = float(rng.uniform(*output_range_mb))
            spec = TaskTypeSpec(name=f"random_{index}", duration_s=duration, output_mb=output)
            fn = make_task_type(spec)
            if futures:
                n_parents = int(rng.integers(0, min(max_parents, len(futures)) + 1))
                parent_indices = rng.choice(len(futures), size=n_parents, replace=False)
                parents = [futures[i] for i in parent_indices]
            else:
                parents = []
            future = fn(*parents)
            futures.append(future)
            info.register(future, "random", duration, output)
    return info
