"""Montage workflow generator (Fig. 8 right, §VI).

Montage builds a science-grade sky mosaic from many input images.  The
paper's instance has 11 340 functions, 108 hours of total computation
(≈6.4 s per task on average) and touches 673.49 GB of data.

The generator follows the canonical Montage structure:

* ``project_image`` (H) — one per input image,
* ``diff_fit`` (I) — one per overlapping image pair (two per image here),
* ``concat_fit`` (J) → ``background_model`` (J) — global fitting steps,
* ``background_correct`` (K) — one per image,
* ``coadd`` (L) → ``shrink_jpeg`` (L) — final assembly.

With ``images = 2 834`` the full-scale workflow has
``2 834 + 5 668 + 2 + 2 834 + 2 = 11 340`` tasks, matching the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.core.client import UniFaaSClient
from repro.data.remote_file import GlobusFile
from repro.workloads.spec import TaskTypeSpec, WorkloadInfo, make_task_type

__all__ = ["MONTAGE_TYPES", "build_montage_workflow", "FULL_SCALE_IMAGES"]

#: Number of input images at scale 1.0 (gives exactly 11 340 tasks).
FULL_SCALE_IMAGES = 2834

#: Durations average ≈6.4 s per task; output volumes total ≈673 GB.
MONTAGE_TYPES = {
    "project_image": TaskTypeSpec(name="project_image", duration_s=9.0, output_mb=90.0),
    "diff_fit": TaskTypeSpec(name="diff_fit", duration_s=3.5, output_mb=25.0),
    "concat_fit": TaskTypeSpec(name="concat_fit", duration_s=60.0, output_mb=10.0),
    "background_model": TaskTypeSpec(name="background_model", duration_s=120.0, output_mb=10.0),
    "background_correct": TaskTypeSpec(name="background_correct", duration_s=7.0, output_mb=90.0),
    "coadd": TaskTypeSpec(name="coadd", duration_s=300.0, output_mb=1024.0, cores=1),
    "shrink_jpeg": TaskTypeSpec(name="shrink_jpeg", duration_s=60.0, output_mb=64.0),
}


def build_montage_workflow(
    client: UniFaaSClient,
    *,
    scale: float = 1.0,
    images: Optional[int] = None,
    raw_image_mb: float = 60.0,
    image_location: Optional[str] = None,
    jitter: float = 0.0,
) -> WorkloadInfo:
    """Compose the Montage DAG through ``client``."""
    if images is None:
        if not 0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        images = max(2, int(round(FULL_SCALE_IMAGES * scale)))
    if images < 2:
        raise ValueError("images must be >= 2")

    types = MONTAGE_TYPES
    fns = {name: make_task_type(spec, jitter) for name, spec in types.items()}
    info = WorkloadInfo(name="montage", scale=scale)
    location = image_location or client.config.executors[0].endpoint

    with client:
        projected = []
        for index in range(images):
            raw = GlobusFile(f"raw_{index:05d}.fits", size_mb=raw_image_mb, location=location)
            info.total_data_mb += raw_image_mb
            future = fns["project_image"](raw)
            info.register(
                future, "project_image", types["project_image"].duration_s, types["project_image"].output_mb
            )
            projected.append(future)

        diffs = []
        for index in range(images):
            left = projected[index]
            right = projected[(index + 1) % images]
            for _ in range(2):  # two overlap fits per image on average
                diff = fns["diff_fit"](left, right)
                info.register(diff, "diff_fit", types["diff_fit"].duration_s, types["diff_fit"].output_mb)
                diffs.append(diff)

        concat = fns["concat_fit"](*diffs[: min(len(diffs), 64)])
        info.register(concat, "concat_fit", types["concat_fit"].duration_s, types["concat_fit"].output_mb)
        model = fns["background_model"](concat)
        info.register(
            model, "background_model", types["background_model"].duration_s, types["background_model"].output_mb
        )

        corrected = []
        for future in projected:
            corr = fns["background_correct"](future, model)
            info.register(
                corr,
                "background_correct",
                types["background_correct"].duration_s,
                types["background_correct"].output_mb,
            )
            corrected.append(corr)

        mosaic = fns["coadd"](*corrected[: min(len(corrected), 128)])
        info.register(mosaic, "coadd", types["coadd"].duration_s, types["coadd"].output_mb)
        preview = fns["shrink_jpeg"](mosaic)
        info.register(preview, "shrink_jpeg", types["shrink_jpeg"].duration_s, types["shrink_jpeg"].output_mb)
    return info
