"""Workload specification helpers.

A workload is described by a set of :class:`TaskTypeSpec` (one per node type
in Fig. 8) and a generator function that composes the DAG through the normal
UniFaaS programming model — decorated functions invoked with futures — so the
evaluation exercises exactly the code path a user would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.functions import FederatedFunction, SimProfile
from repro.core.futures import UniFuture

__all__ = ["TaskTypeSpec", "WorkloadInfo", "make_task_type"]


@dataclass(frozen=True)
class TaskTypeSpec:
    """One task type (a letter node in Fig. 8)."""

    name: str
    #: Execution time of one task on a reference-speed core, in seconds.
    duration_s: float
    #: Output data produced per task, in MB.
    output_mb: float
    #: Extra seconds per MB of input data (0 keeps durations size-independent).
    seconds_per_input_mb: float = 0.0
    #: Workers a task of this type occupies.
    cores: int = 1
    #: Per-attempt failure probability (poison injection; see SimProfile).
    failure_rate: float = 0.0

    def to_profile(self, jitter: float = 0.0) -> SimProfile:
        return SimProfile(
            base_time_s=self.duration_s,
            time_per_input_mb_s=self.seconds_per_input_mb,
            output_base_mb=self.output_mb,
            jitter=jitter,
            cores=self.cores,
            failure_rate=self.failure_rate,
        )


def make_task_type(spec: TaskTypeSpec, jitter: float = 0.0) -> FederatedFunction:
    """Create the federated function implementing one task type.

    The callable body is a no-op: in simulation mode it never runs, and the
    workloads are only ever executed in simulation mode (their real
    counterparts need chemistry/astronomy toolchains that are out of scope).
    """

    def _body(*args, **kwargs):  # pragma: no cover - never executed in simulation
        return None

    _body.__name__ = spec.name
    return FederatedFunction(_body, name=spec.name, sim_profile=spec.to_profile(jitter))


@dataclass
class WorkloadInfo:
    """What a workload generator hands back to the caller."""

    name: str
    futures: List[UniFuture] = field(default_factory=list)
    task_count: int = 0
    tasks_by_type: Dict[str, int] = field(default_factory=dict)
    #: Total data volume (input + intermediate + output) the workload touches, MB.
    total_data_mb: float = 0.0
    #: Expected total computation time on reference hardware, in core-seconds.
    total_compute_s: float = 0.0
    #: Scale factor the generator was invoked with.
    scale: float = 1.0

    @property
    def average_task_duration_s(self) -> float:
        if self.task_count == 0:
            return 0.0
        return self.total_compute_s / self.task_count

    @property
    def total_data_gb(self) -> float:
        return self.total_data_mb / 1024.0

    def register(self, future: UniFuture, type_name: str, duration_s: float, output_mb: float) -> None:
        self.futures.append(future)
        self.task_count += 1
        self.tasks_by_type[type_name] = self.tasks_by_type.get(type_name, 0) + 1
        self.total_compute_s += duration_s
        self.total_data_mb += output_mb
