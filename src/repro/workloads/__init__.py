"""Workload generators used in the paper's evaluation (§V, §VI).

* :mod:`repro.workloads.drug_screening` — the drug-screening pipeline
  (24 001 functions, ~220 s average task, 480 GB of data; Fig. 8 left).
* :mod:`repro.workloads.montage` — the Montage mosaic workflow (11 340
  functions, ~6.4 s average task, 673 GB of data; Fig. 8 right).
* :mod:`repro.workloads.synthetic` — CPU-stress tasks and random DAGs used by
  the scalability and elasticity experiments (Figs. 6 and 7).
"""

from repro.workloads.spec import TaskTypeSpec, WorkloadInfo
from repro.workloads.drug_screening import build_drug_screening_workflow
from repro.workloads.montage import build_montage_workflow
from repro.workloads.synthetic import build_random_dag, build_stress_workload

__all__ = [
    "TaskTypeSpec",
    "WorkloadInfo",
    "build_drug_screening_workflow",
    "build_montage_workflow",
    "build_random_dag",
    "build_stress_workload",
]
