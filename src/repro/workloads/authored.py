"""Legacy generators re-expressed through the authoring API.

The layered DAG generator (``scenarios/spec.py::_build_layered_workload``)
re-declared job-by-job with :mod:`repro.authoring`: every node becomes a
plain success-edge :class:`~repro.authoring.api.Job` sharing the
``layer_task`` task type.  Because plain success-edge jobs materialize
eagerly in declaration order with their parents' futures as arguments, the
engine sees the *exact* submission sequence the static builder produces —
the parity proof that the authoring surface adds no behavioral drift
(`tests/scenarios/test_zoo.py` pins the digests equal).
"""

from __future__ import annotations

from repro.authoring.api import job, workflow

__all__ = ["LAYERED_AUTHORED"]


def _layer_node(*args, **kwargs):  # pragma: no cover - never runs in simulation
    return None


@workflow(name="zoo-layered")
def _layered(
    task_count: int = 200,
    layer_width: int = 25,
    duration_s: float = 4.0,
    output_mb: float = 5.0,
):
    """The layered DAG: each task depends on two tasks of the previous layer."""
    previous = []
    count = 0
    while count < task_count:
        layer_size = min(layer_width, task_count - count)
        layer = []
        for i in range(layer_size):
            node = job(
                _layer_node,
                name=f"layer_task_{count:05d}",
                function_name="layer_task",
                duration_s=duration_s,
                output_mb=output_mb,
            )
            if previous:
                node.after(
                    previous[i % len(previous)], previous[(i + 1) % len(previous)]
                )
            layer.append(node)
            count += 1
        previous = layer


LAYERED_AUTHORED = _layered
