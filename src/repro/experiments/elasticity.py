"""Fig. 7 — multi-endpoint elasticity.

Three endpoints (on Qiming, the Dept. cluster and the Lab cluster) are
deployed with auto-scaling enabled and worker caps of 100, 40 and 20.  At
t=10 s the experiment submits 50×30 s tasks pinned to EP1, 20×15 s tasks to
EP2 and 10×10 s tasks to EP3; at t=70 s it submits 200/80/40 of the same
tasks; the process is repeated a second time.  Each endpoint scales out to
meet its own demand, returns its workers after the 30 s idle interval, and
does so independently of the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.environment import EndpointSetup, build_simulation
from repro.faas.types import ServiceLatencyModel
from repro.metrics.collector import MetricsCollector, TimeSeries
from repro.sim.hardware import DEPT_CLUSTER, LAB_CLUSTER, QIMING
from repro.sim.network import NetworkModel
from repro.workloads.synthetic import build_stress_workload

__all__ = ["ElasticityResult", "run_elasticity_experiment", "PAPER_PHASES"]

#: (time, {endpoint: (task_count, duration_s)}) — §V-D, repeated twice.
PAPER_PHASES: List[Tuple[float, Dict[str, Tuple[int, float]]]] = [
    (10.0, {"ep1": (50, 30.0), "ep2": (20, 15.0), "ep3": (10, 10.0)}),
    (70.0, {"ep1": (200, 30.0), "ep2": (80, 15.0), "ep3": (40, 10.0)}),
    (210.0, {"ep1": (50, 30.0), "ep2": (20, 15.0), "ep3": (10, 10.0)}),
    (270.0, {"ep1": (200, 30.0), "ep2": (80, 15.0), "ep3": (40, 10.0)}),
]

#: Worker caps per endpoint (paper: 100, 40, 20), in workers.
PAPER_MAX_WORKERS = {"ep1": 100, "ep2": 40, "ep3": 20}
#: Each node contributes 20 workers (paper: "each node has 20 workers").
WORKERS_PER_NODE = 20


@dataclass
class ElasticityResult:
    """Time-series of pending tasks and active workers per endpoint."""

    active_workers: Dict[str, TimeSeries] = field(default_factory=dict)
    pending_tasks: Dict[str, TimeSeries] = field(default_factory=dict)
    max_workers_observed: Dict[str, int] = field(default_factory=dict)
    completed_tasks: int = 0
    makespan_s: float = 0.0

    def scaled_to_zero(self, endpoint: str) -> bool:
        """Whether the endpoint eventually released all its workers."""
        series = self.active_workers.get(endpoint)
        if series is None or not series.values:
            return False
        return series.values[-1] == 0


def run_elasticity_experiment(
    phases: Sequence[Tuple[float, Dict[str, Tuple[int, float]]]] = PAPER_PHASES,
    *,
    max_workers: Dict[str, int] = None,
    idle_shutdown_s: float = 30.0,
    sample_interval_s: float = 2.0,
    drain_time_s: float = 120.0,
    seed: int = 0,
) -> ElasticityResult:
    """Run the Fig. 7 elasticity scenario and return the time-series."""
    caps = dict(max_workers or PAPER_MAX_WORKERS)
    clusters = {"ep1": QIMING, "ep2": DEPT_CLUSTER, "ep3": LAB_CLUSTER}
    setups = []
    for name, cap in caps.items():
        cluster = clusters.get(name, QIMING).with_overrides(workers_per_node=WORKERS_PER_NODE)
        setups.append(
            EndpointSetup(
                name=name,
                cluster=cluster,
                initial_workers=0,
                max_workers=cap,
                auto_scale=True,
                idle_shutdown_s=idle_shutdown_s,
                duration_jitter=0.0,
                execution_overhead_s=0.0,
            )
        )
    network = NetworkModel.uniform(list(caps), bandwidth_mbps=200.0, jitter=0.0, seed=seed)
    latency = ServiceLatencyModel(
        submit_latency_s=0.004, dispatch_latency_s=0.05, result_poll_latency_s=0.05
    )
    env = build_simulation(setups, network=network, latency=latency, seed=seed)
    metrics = MetricsCollector(sample_interval_s=sample_interval_s)
    client = env.make_client(env.make_config("LOCALITY", enable_scaling=False), metrics=metrics)

    def sample_now() -> None:
        pending = {
            name: env.endpoint(name).queued_tasks + client.endpoint_monitor.mock(name).outstanding_tasks
            if name in client.endpoint_monitor.endpoint_names()
            else env.endpoint(name).queued_tasks
            for name in caps
        }
        metrics.sample(env.kernel.now(), env.fabric.worker_snapshot(), 0, pending)

    # Regular sampling independent of the client loop so scale-down during
    # idle periods is captured too.
    env.kernel.schedule_periodic(sample_interval_s, sample_now, daemon=True, start_delay=0.0)

    completed = 0
    for phase_time, submissions in phases:
        # A previous phase may already have pushed the clock past this phase's
        # nominal submission time; submit immediately in that case.
        env.kernel.run(until=max(phase_time, env.kernel.now()))
        for endpoint, (count, duration) in submissions.items():
            info = build_stress_workload(client, count, duration, endpoint=endpoint)
            completed += info.task_count
        client.run()
    # Let idle shutdown drain the pools so the final scale-to-zero is visible.
    env.kernel.run(until=env.kernel.now() + drain_time_s)

    result = ElasticityResult(
        active_workers={name: metrics.active_workers[name] for name in caps},
        pending_tasks={name: metrics.pending_tasks[name] for name in caps},
        max_workers_observed={
            name: int(metrics.active_workers[name].max()) for name in caps
        },
        completed_tasks=metrics.completed_count,
        makespan_s=env.kernel.now(),
    )
    return result
