"""Tables IV/V and Figs. 9–13 — the drug-screening and Montage case studies.

Static resource capacity (§VI-A, Table IV, Figs. 9–11)
-------------------------------------------------------
Both workflows run across the four-cluster testbed with fixed worker
deployments (drug screening: 2000/384/48/52 workers on Taiyi/Qiming/Dept/Lab;
Montage: 120/240/48/52) under the Capacity, Locality and DHA schedulers, and
against a single-cluster baseline (Taiyi only for drug screening, Qiming only
for Montage).  The metrics of interest are the makespan, the volume of data
moved between endpoints, worker utilisation over time, the number of tasks
sitting in data staging, and how many tasks each worker received.

Dynamic resource capacity (§VI-B, Table V, Figs. 12–13)
--------------------------------------------------------
The same workflows run while worker capacity changes mid-flight (another
user's allocation starting or ending); DHA is additionally run with its
re-scheduling mechanism disabled to isolate that mechanism's contribution.

Every entry point takes a ``scale`` factor that shrinks the workflow *and*
the worker deployments by the same ratio, preserving the task-per-worker
pressure (and therefore the relative makespans) while keeping run times
suitable for a benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.client import UniFaaSClient
from repro.experiments.environment import (
    build_simulation,
    paper_testbed_network,
    paper_testbed_setups,
)
from repro.faas.endpoint import CapacityChange
from repro.faas.types import ServiceLatencyModel
from repro.metrics.collector import MetricsCollector, TimeSeries
from repro.workloads.drug_screening import DRUG_SCREENING_TYPES, build_drug_screening_workflow
from repro.workloads.montage import MONTAGE_TYPES, build_montage_workflow
from repro.workloads.spec import WorkloadInfo

__all__ = [
    "CaseStudyResult",
    "DRUG_STATIC_DEPLOYMENT",
    "MONTAGE_STATIC_DEPLOYMENT",
    "DRUG_DYNAMIC_DEPLOYMENT",
    "MONTAGE_DYNAMIC_DEPLOYMENT",
    "run_case_study",
    "run_static_capacity_study",
    "run_dynamic_capacity_study",
]

#: §VI-A worker deployments (full scale).
DRUG_STATIC_DEPLOYMENT = {"taiyi": 2000, "qiming": 384, "dept": 48, "lab": 52}
MONTAGE_STATIC_DEPLOYMENT = {"taiyi": 120, "qiming": 240, "dept": 48, "lab": 52}
DRUG_BASELINE_DEPLOYMENT = {"taiyi": 2000}
MONTAGE_BASELINE_DEPLOYMENT = {"qiming": 240}

#: §VI-B initial deployments and capacity-change schedules (full scale).
DRUG_DYNAMIC_DEPLOYMENT = {"taiyi": 400, "qiming": 600, "dept": 48, "lab": 52}
DRUG_DYNAMIC_CHANGES = {"qiming": [(120.0, +600)], "taiyi": [(540.0, -280)]}
MONTAGE_DYNAMIC_DEPLOYMENT = {"taiyi": 40, "qiming": 240, "dept": 48, "lab": 52}
MONTAGE_DYNAMIC_CHANGES = {"taiyi": [(120.0, +80)], "qiming": [(300.0, -168)]}

#: Fraction of the paper's task counts used for the dynamic-capacity study
#: (drug screening uses 12 001 of the 24 001 functions in §VI-B).
DRUG_DYNAMIC_WORKFLOW_FRACTION = 0.5


@dataclass
class CaseStudyResult:
    """Outcome of one (workflow, scheduler) case-study run."""

    workflow: str
    experiment: str
    makespan_s: float
    transfer_size_gb: float
    task_count: int
    completed_tasks: int
    rescheduled_tasks: int
    deployment: Dict[str, int]
    tasks_per_endpoint: Dict[str, int]
    utilization: TimeSeries
    staging_tasks: TimeSeries
    active_workers: Dict[str, TimeSeries]
    rescheduled_series: TimeSeries
    scheduler_overhead_per_task_s: float

    def tasks_per_worker(self) -> Dict[str, float]:
        """Tasks each endpoint executed, normalised by its worker count (Fig. 11)."""
        out = {}
        for endpoint, count in self.tasks_per_endpoint.items():
            workers = self.deployment.get(endpoint, 0)
            out[endpoint] = count / workers if workers else 0.0
        return out


WorkflowBuilder = Callable[[UniFaaSClient], WorkloadInfo]


def _scaled_deployment(deployment: Dict[str, int], scale: float) -> Dict[str, int]:
    return {name: max(1, int(round(count * scale))) for name, count in deployment.items()}


def _scaled_changes(
    changes: Dict[str, List[tuple]], scale: float
) -> Dict[str, List[CapacityChange]]:
    scaled: Dict[str, List[CapacityChange]] = {}
    for name, entries in changes.items():
        scaled[name] = [
            CapacityChange(at_time_s=t, delta_workers=int(round(delta * scale)) or (1 if delta > 0 else -1))
            for t, delta in entries
        ]
    return scaled


def _workflow_builder(workflow: str, scale: float, fraction: float = 1.0) -> WorkflowBuilder:
    if workflow == "drug_screening":
        def build(client: UniFaaSClient) -> WorkloadInfo:
            return build_drug_screening_workflow(client, scale=scale * fraction)
        return build
    if workflow == "montage":
        def build(client: UniFaaSClient) -> WorkloadInfo:
            return build_montage_workflow(client, scale=scale * fraction)
        return build
    raise ValueError(f"unknown workflow {workflow!r}; expected 'drug_screening' or 'montage'")


def _task_types(workflow: str):
    return (
        DRUG_SCREENING_TYPES.values()
        if workflow == "drug_screening"
        else MONTAGE_TYPES.values()
    )


def run_case_study(
    workflow: str,
    scheduler: str,
    deployment: Dict[str, int],
    *,
    scale: float = 0.05,
    capacity_changes: Optional[Dict[str, List[tuple]]] = None,
    enable_rescheduling: bool = True,
    enable_delay_mechanism: bool = True,
    disable_endpoint_mocking: bool = False,
    workflow_fraction: float = 1.0,
    label: Optional[str] = None,
    seed: int = 0,
    sample_interval_s: float = 20.0,
) -> CaseStudyResult:
    """Run one (workflow, scheduler, deployment) combination."""
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    scaled_deployment = _scaled_deployment(deployment, scale)
    changes = _scaled_changes(capacity_changes or {}, scale)

    setups = paper_testbed_setups(
        scaled_deployment, auto_scale=False, capacity_changes=changes
    )
    latency = ServiceLatencyModel(
        submit_latency_s=0.004,
        dispatch_latency_s=0.1,
        result_poll_latency_s=0.1,
        endpoint_overhead_s=0.062,
    )
    env = build_simulation(
        setups, network=paper_testbed_network(seed=seed), latency=latency, seed=seed, batch_size=128
    )
    metrics = MetricsCollector(sample_interval_s=sample_interval_s)
    config = env.make_config(
        scheduler,
        enable_rescheduling=enable_rescheduling,
        enable_delay_mechanism=enable_delay_mechanism,
        enable_scaling=False,
        rescheduling_interval_s=30.0,
        endpoint_sync_interval_s=30.0,
        batch_size=128,
        # The case studies reproduce the published system, whose data layer
        # is the plain §IV-E FIFO: the data plane's multi-source staging and
        # prefetching would (deliberately) break Table IV/V invariants such
        # as "Capacity moves the least data".  The plane has its own
        # scenarios (storage-pressure, hot-dataset) and benchmark gates.
        enable_dataplane=False,
        # Same reasoning for the global placement plan: the published
        # system places purely greedily per task, so the facility-location
        # steering would shift the Table IV/V makespans and data volumes.
        # The plan has its own presets and the `placement` benchmark gate.
        enable_placement_plan=False,
    )
    client = env.make_client(config, metrics=metrics)
    if disable_endpoint_mocking:
        # Ablation: the scheduler only ever sees the service's periodically
        # refreshed (stale) endpoint status instead of the local mocks.
        client.endpoint_monitor.mocking_enabled = False

    if scheduler.upper() in ("DHA", "HEFT"):
        # §VI-A: "For DHA, we assume full knowledge can be retrieved from the
        # profilers."
        env.seed_full_knowledge(client)
        env.seed_execution_knowledge(client, _task_types(workflow))

    builder = _workflow_builder(workflow, scale, workflow_fraction)
    info = builder(client)
    client.run()

    summary = client.summary()
    return CaseStudyResult(
        workflow=workflow,
        experiment=label or scheduler,
        makespan_s=summary.makespan_s,
        transfer_size_gb=summary.transfer_volume_gb,
        task_count=info.task_count,
        completed_tasks=summary.completed_tasks,
        rescheduled_tasks=summary.rescheduled_tasks,
        deployment=scaled_deployment,
        tasks_per_endpoint=dict(summary.tasks_per_endpoint),
        utilization=metrics.utilization,
        staging_tasks=metrics.staging_tasks,
        active_workers=dict(metrics.active_workers),
        rescheduled_series=metrics.rescheduled_tasks_series,
        scheduler_overhead_per_task_s=summary.scheduler_overhead_per_task_s,
    )


def run_static_capacity_study(
    workflow: str,
    *,
    scale: float = 0.05,
    schedulers: Sequence[str] = ("CAPACITY", "LOCALITY", "DHA"),
    include_baseline: bool = True,
    seed: int = 0,
) -> Dict[str, CaseStudyResult]:
    """Table IV: static resource capacity, plus Figs. 9–11 time-series."""
    deployment = (
        DRUG_STATIC_DEPLOYMENT if workflow == "drug_screening" else MONTAGE_STATIC_DEPLOYMENT
    )
    results: Dict[str, CaseStudyResult] = {}
    for scheduler in schedulers:
        results[scheduler] = run_case_study(
            workflow, scheduler, deployment, scale=scale, seed=seed
        )
    if include_baseline:
        if workflow == "drug_screening":
            baseline_deployment, baseline_name = DRUG_BASELINE_DEPLOYMENT, "Baseline: Only Taiyi"
        else:
            baseline_deployment, baseline_name = MONTAGE_BASELINE_DEPLOYMENT, "Baseline: Only Qiming"
        results[baseline_name] = run_case_study(
            workflow,
            "CAPACITY",
            baseline_deployment,
            scale=scale,
            label=baseline_name,
            seed=seed,
        )
    return results


def run_dynamic_capacity_study(
    workflow: str,
    *,
    scale: float = 0.05,
    schedulers: Sequence[str] = ("CAPACITY", "LOCALITY", "DHA"),
    include_no_rescheduling: bool = True,
    seed: int = 0,
) -> Dict[str, CaseStudyResult]:
    """Table V: dynamic resource capacity, plus Figs. 12–13 time-series."""
    if workflow == "drug_screening":
        deployment, changes = DRUG_DYNAMIC_DEPLOYMENT, DRUG_DYNAMIC_CHANGES
        fraction = DRUG_DYNAMIC_WORKFLOW_FRACTION
    else:
        deployment, changes = MONTAGE_DYNAMIC_DEPLOYMENT, MONTAGE_DYNAMIC_CHANGES
        fraction = 1.0

    results: Dict[str, CaseStudyResult] = {}
    for scheduler in schedulers:
        results[scheduler] = run_case_study(
            workflow,
            scheduler,
            deployment,
            scale=scale,
            capacity_changes=changes,
            workflow_fraction=fraction,
            seed=seed,
        )
    if include_no_rescheduling:
        results["DHA without re-sched."] = run_case_study(
            workflow,
            "DHA",
            deployment,
            scale=scale,
            capacity_changes=changes,
            enable_rescheduling=False,
            workflow_fraction=fraction,
            label="DHA without re-sched.",
            seed=seed,
        )
    return results
