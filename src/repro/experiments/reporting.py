"""Plain-text reporting helpers for the experiment harnesses.

The benchmark suite prints the same rows/series the paper reports so that a
reader can compare shapes side by side (EXPERIMENTS.md records a snapshot of
these outputs next to the paper's numbers).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from repro.experiments.case_studies import CaseStudyResult
from repro.metrics.collector import TimeSeries

__all__ = [
    "format_table",
    "format_case_study_table",
    "format_timeseries",
    "downsample",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.2f}"
    return str(value)


def format_case_study_table(results: Mapping[str, CaseStudyResult]) -> str:
    """Render results in the shape of Tables IV/V."""
    headers = ["Experiment", "Makespan (s)", "Transfer size (GB)", "Tasks", "Re-scheduled"]
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.makespan_s,
                result.transfer_size_gb,
                result.task_count,
                result.rescheduled_tasks,
            ]
        )
    return format_table(headers, rows)


def downsample(series: TimeSeries, max_points: int = 20) -> List[tuple]:
    """Reduce a time series to at most ``max_points`` (time, value) pairs."""
    n = len(series)
    if n == 0:
        return []
    step = max(1, n // max_points)
    points = [(series.times[i], series.values[i]) for i in range(0, n, step)]
    if points[-1][0] != series.times[-1]:
        points.append((series.times[-1], series.values[-1]))
    return points


def format_timeseries(name: str, series: TimeSeries, max_points: int = 12) -> str:
    """Render a compact one-line view of a time series."""
    points = downsample(series, max_points)
    rendered = ", ".join(f"{t:.0f}s:{v:.0f}" for t, v in points)
    return f"{name}: {rendered}"
