"""Fig. 5 — per-component latency breakdown of a single task.

The paper measures the latency each UniFaaS component adds to a "hello
world" task with a 1 MB input file on the Qiming endpoint: scheduling takes
~3 ms, the data transfer ~726 ms, submission ~4 ms plus a ~174 ms WAN
dispatch, remote execution adds ~62 ms of overhead around the ~1 087 ms task,
result polling ~117 ms and result logging under 1 ms.

This experiment runs the same single-task workflow on the simulated Qiming
endpoint and reports the same components: the wide-area pieces come from the
simulated timeline (transfer, dispatch, execution, polling latencies), while
the client-side pieces (scheduling, data-management decision, result
logging) are measured as real CPU time of this reproduction's code.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import List

from repro.core.functions import FederatedFunction, SimProfile
from repro.data.remote_file import GlobusFile
from repro.experiments.environment import EndpointSetup, build_simulation
from repro.faas.types import ServiceLatencyModel
from repro.metrics.collector import LatencyBreakdown
from repro.sim.hardware import QIMING
from repro.sim.network import LinkSpec, NetworkModel

__all__ = ["LatencyExperimentResult", "run_latency_experiment"]


@dataclass
class LatencyExperimentResult:
    """Averaged latency breakdown over the experiment's runs."""

    breakdown: LatencyBreakdown
    runs: int
    task_execution_s: float

    def rows(self) -> List[tuple]:
        """(component, seconds) rows in the order Fig. 5 presents them."""
        b = self.breakdown
        return [
            ("scheduling", b.scheduling_s),
            ("data_management", b.data_management_s),
            ("submission", b.submission_s),
            ("remote_execution", b.execution_s),
            ("result_polling", b.result_polling_s),
            ("result_logging", b.result_logging_s),
        ]


def run_latency_experiment(
    runs: int = 5,
    *,
    input_mb: float = 1.0,
    task_duration_s: float = 1.087,
    seed: int = 0,
) -> LatencyExperimentResult:
    """Run the Fig. 5 hello-world latency measurement."""
    if runs < 1:
        raise ValueError("runs must be >= 1")

    latency = ServiceLatencyModel(
        submit_latency_s=0.004,
        dispatch_latency_s=0.174,
        result_poll_latency_s=0.117,
        endpoint_overhead_s=0.062,
        status_refresh_interval_s=60.0,
    )
    totals = LatencyBreakdown()
    execution_total = 0.0

    for run in range(runs):
        # The workstation-to-Qiming link: ~1.4 MB/s effective for small files,
        # reproducing the ~726 ms staging of a 1 MB input.
        network = NetworkModel(
            default_link=LinkSpec(bandwidth_mbps=2.0, latency_s=0.05, jitter=0.0), seed=seed + run
        )
        env = build_simulation(
            [
                EndpointSetup(
                    name="qiming",
                    cluster=QIMING,
                    initial_workers=4,
                    auto_scale=False,
                    duration_jitter=0.0,
                    execution_overhead_s=latency.endpoint_overhead_s,
                )
            ],
            network=network,
            latency=latency,
            seed=seed + run,
        )
        client = env.make_client(env.make_config("DHA", transfer_type="rsync"))

        hello = FederatedFunction(
            lambda data=None: "hello world",
            name="hello_world",
            sim_profile=SimProfile(base_time_s=task_duration_s),
        )
        input_file = GlobusFile("input.dat", size_mb=input_mb, location="workstation")

        with client:
            logging_started = _time.perf_counter()
            future = hello(input_file)
            client.run()
        result_logging_s = min(_time.perf_counter() - logging_started, 0.01)

        task = client.graph.get(future.task_id)
        ts = task.timestamps
        staging = ts.staging_time or 0.0
        submission = (ts.started or 0.0) - (ts.dispatched or 0.0) - latency.endpoint_overhead_s
        execution = (ts.completed or 0.0) - (ts.started or 0.0)
        scheduling = max(client.metrics.scheduling_cpu_s, 1e-5)

        totals.scheduling_s += scheduling
        totals.data_management_s += staging
        totals.submission_s += max(submission, 0.0)
        totals.execution_s += execution
        totals.result_polling_s += latency.result_poll_latency_s
        totals.result_logging_s += result_logging_s
        execution_total += execution

    breakdown = LatencyBreakdown(
        scheduling_s=totals.scheduling_s / runs,
        data_management_s=totals.data_management_s / runs,
        submission_s=totals.submission_s / runs,
        execution_s=totals.execution_s / runs,
        result_polling_s=totals.result_polling_s / runs,
        result_logging_s=totals.result_logging_s / runs,
    )
    return LatencyExperimentResult(
        breakdown=breakdown, runs=runs, task_execution_s=execution_total / runs
    )
