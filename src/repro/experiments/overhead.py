"""Table III — scheduler overhead per task.

The paper measures the time the scheduler itself spends per task (including
predicting task characteristics where needed) while scheduling the
drug-screening workflow on the submission workstation: Capacity needs
~1.7×10⁻⁴ s, Locality ~3.0×10⁻³ s and DHA ~3.5×10⁻³ s per task.

This experiment runs a scaled drug-screening workflow under each algorithm
and reports the measured wall-clock scheduling time divided by the number of
scheduling decisions — real overhead of this reproduction's scheduler code,
not simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.case_studies import DRUG_STATIC_DEPLOYMENT, run_case_study

__all__ = ["OverheadResult", "run_overhead_experiment"]


@dataclass
class OverheadResult:
    """Per-algorithm scheduler overhead."""

    overhead_per_task_s: Dict[str, float]
    task_count: int

    def rows(self) -> List[tuple]:
        return sorted(self.overhead_per_task_s.items())

    def ordering_matches_paper(self) -> bool:
        """DHA (prediction + prioritisation) should be the most expensive (Table III)."""
        o = self.overhead_per_task_s
        if not {"CAPACITY", "LOCALITY", "DHA"} <= set(o):
            return False
        return o["DHA"] >= o["CAPACITY"] and o["DHA"] >= o["LOCALITY"]


def run_overhead_experiment(
    schedulers: Sequence[str] = ("CAPACITY", "LOCALITY", "DHA"),
    *,
    scale: float = 0.02,
    seed: int = 0,
) -> OverheadResult:
    """Measure the per-task scheduling overhead of each algorithm."""
    overheads: Dict[str, float] = {}
    task_count = 0
    for scheduler in schedulers:
        result = run_case_study(
            "drug_screening", scheduler, DRUG_STATIC_DEPLOYMENT, scale=scale, seed=seed
        )
        overheads[scheduler] = result.scheduler_overhead_per_task_s
        task_count = result.task_count
    return OverheadResult(overhead_per_task_s=overheads, task_count=task_count)
