"""Builders for simulated federated testbeds.

Experiments, examples and integration tests all need the same plumbing: a
simulation kernel, a set of endpoints on heterogeneous clusters, the service
facade, the execution fabric, a wide-area network and a transfer backend.
:func:`build_simulation` assembles them and
:meth:`SimulationEnvironment.make_client` produces a ready-to-use
:class:`~repro.core.client.UniFaaSClient` on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.client import UniFaaSClient
from repro.core.config import Config, ExecutorSpec
from repro.data.transfer import SimulatedTransferBackend
from repro.elastic.scaling import ScalingStrategy
from repro.faas.endpoint import CapacityChange, SimulatedEndpoint
from repro.faas.fabric import SimulatedFabric
from repro.faas.service import FederatedFaaSService
from repro.faas.types import ServiceLatencyModel
from repro.metrics.collector import MetricsCollector
from repro.monitor.store import HistoryStore
from repro.sched.base import Scheduler
from repro.sim.hardware import ClusterSpec, QIMING, testbed_clusters
from repro.sim.kernel import SimulationKernel
from repro.sim.network import NetworkModel
from repro.sim.rng import RngRegistry

__all__ = [
    "EndpointSetup",
    "SimulationEnvironment",
    "build_simulation",
    "paper_testbed_network",
]


@dataclass
class EndpointSetup:
    """How one endpoint should be deployed in a simulated experiment."""

    name: str
    cluster: ClusterSpec
    initial_workers: int = 0
    max_workers: Optional[int] = None
    auto_scale: bool = True
    idle_shutdown_s: float = 30.0
    failure_rate: float = 0.0
    duration_jitter: float = 0.02
    execution_overhead_s: float = 0.062
    cold_start_penalty_s: float = 0.0
    capacity_changes: List[CapacityChange] = field(default_factory=list)


@dataclass
class SimulationEnvironment:
    """A fully wired simulated deployment."""

    kernel: SimulationKernel
    service: FederatedFaaSService
    fabric: SimulatedFabric
    network: NetworkModel
    transfer_backend: SimulatedTransferBackend
    endpoints: Dict[str, SimulatedEndpoint]
    rng: RngRegistry

    def endpoint(self, name: str) -> SimulatedEndpoint:
        return self.endpoints[name]

    def make_config(
        self,
        scheduling_strategy: str = "DHA",
        *,
        transfer_type: str = "Globus",
        enable_delay_mechanism: bool = True,
        enable_rescheduling: bool = True,
        enable_scaling: bool = False,
        storage_gb: Optional[Dict[str, float]] = None,
        **overrides,
    ) -> Config:
        """Build a config for this deployment.

        ``storage_gb`` optionally maps endpoint names to per-endpoint staging
        storage budgets (the data plane's replica-store capacities); endpoints
        not listed fall back to ``Config.storage_capacity_gb``.
        """
        storage = storage_gb or {}
        executors = [
            ExecutorSpec(label=name, endpoint=name, storage_gb=storage.get(name))
            for name in self.endpoints
        ]
        return Config(
            executors=executors,
            scheduling_strategy=scheduling_strategy,
            file_transfer_type=transfer_type,
            enable_delay_mechanism=enable_delay_mechanism,
            enable_rescheduling=enable_rescheduling,
            enable_scaling=enable_scaling,
            **overrides,
        )

    def make_client(
        self,
        config: Optional[Config] = None,
        *,
        scheduler: Optional[Scheduler] = None,
        scaling_strategy: Optional[ScalingStrategy] = None,
        history_store: Optional[HistoryStore] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> UniFaaSClient:
        config = config or self.make_config()
        return UniFaaSClient(
            config,
            self.fabric,
            transfer_backend=self.transfer_backend,
            scheduler=scheduler,
            scaling_strategy=scaling_strategy,
            history_store=history_store,
            metrics=metrics,
        )

    def seed_full_knowledge(self, client: UniFaaSClient) -> None:
        """Give a client's transfer profiler the true pairwise bandwidths.

        The paper's DHA experiments assume "full knowledge can be retrieved
        from the profilers"; this mirrors the probing transfers that would
        provide it.
        """
        names = list(self.endpoints)
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                bandwidth = self.network.effective_bandwidth(src, dst, concurrency=1)
                client.transfer_profiler.seed_bandwidth(src, dst, bandwidth)
        client.transfer_profiler.update_models(force=True)

    def seed_execution_knowledge(self, client: UniFaaSClient, task_types) -> None:
        """Pre-train the execution profiler with per-cluster task durations.

        ``task_types`` is an iterable of
        :class:`~repro.workloads.spec.TaskTypeSpec`; for each (type, endpoint)
        pair a few synthetic observations are generated from the cluster's
        speed factor, standing in for the historical database a production
        deployment would load (§IV-B).
        """
        from repro.faas.types import TaskExecutionRecord

        for spec in task_types:
            for name, endpoint in self.endpoints.items():
                hw = endpoint.cluster.hardware
                duration = spec.duration_s / endpoint.speed_factor
                for repeat in range(3):
                    client.execution_profiler.observe(
                        TaskExecutionRecord(
                            task_id=f"seed-{spec.name}-{name}-{repeat}",
                            endpoint=name,
                            function_name=spec.name,
                            success=True,
                            submitted_at=0.0,
                            started_at=0.0,
                            completed_at=duration,
                            input_mb=0.0,
                            output_mb=spec.output_mb,
                            cores_per_node=hw.cores_per_node,
                            cpu_freq_ghz=hw.cpu_freq_ghz,
                            ram_gb=hw.ram_gb,
                        )
                    )
        client.execution_profiler.update_models(force=True)


def paper_testbed_network(seed: int = 0) -> NetworkModel:
    """The wide-area network connecting the Table II clusters."""
    return NetworkModel.testbed(seed=seed)


def build_simulation(
    endpoints: Sequence[EndpointSetup],
    *,
    network: Optional[NetworkModel] = None,
    latency: Optional[ServiceLatencyModel] = None,
    seed: int = 0,
    batch_size: int = 64,
) -> SimulationEnvironment:
    """Assemble a simulated federated deployment."""
    if not endpoints:
        raise ValueError("at least one endpoint is required")
    rng = RngRegistry(seed=seed)
    kernel = SimulationKernel()
    service = FederatedFaaSService(kernel, latency=latency or ServiceLatencyModel())
    net = network or NetworkModel.uniform(
        [e.name for e in endpoints], bandwidth_mbps=150.0, seed=seed
    )
    built: Dict[str, SimulatedEndpoint] = {}
    for setup in endpoints:
        endpoint = SimulatedEndpoint(
            setup.name,
            setup.cluster,
            kernel,
            rng=rng.stream(f"endpoint-{setup.name}"),
            initial_workers=setup.initial_workers,
            max_workers=setup.max_workers,
            auto_scale=setup.auto_scale,
            idle_shutdown_s=setup.idle_shutdown_s,
            failure_rate=setup.failure_rate,
            duration_jitter=setup.duration_jitter,
            execution_overhead_s=setup.execution_overhead_s,
            cold_start_penalty_s=setup.cold_start_penalty_s,
        )
        if setup.capacity_changes:
            endpoint.set_capacity_schedule(setup.capacity_changes)
        service.register_endpoint(endpoint)
        built[setup.name] = endpoint
    fabric = SimulatedFabric(
        kernel, service, batch_size=batch_size, rng=rng.stream("fabric")
    )
    backend = SimulatedTransferBackend(kernel, net)
    return SimulationEnvironment(
        kernel=kernel,
        service=service,
        fabric=fabric,
        network=net,
        transfer_backend=backend,
        endpoints=built,
        rng=rng,
    )


def single_cluster_environment(
    workers: int = 24, cluster: Optional[ClusterSpec] = None, seed: int = 0
) -> SimulationEnvironment:
    """Small single-endpoint environment (quick tests and the Fig. 5 bench)."""
    cluster = cluster or QIMING
    setup = EndpointSetup(
        name=cluster.name,
        cluster=cluster,
        initial_workers=workers,
        max_workers=max(workers, cluster.workers_per_node),
        auto_scale=False,
        duration_jitter=0.0,
    )
    return build_simulation([setup], seed=seed)


def paper_testbed_setups(
    workers: Dict[str, int],
    *,
    auto_scale: bool = False,
    capacity_changes: Optional[Dict[str, List[CapacityChange]]] = None,
) -> List[EndpointSetup]:
    """EndpointSetups for the Table II clusters with given worker deployments.

    ``workers`` maps cluster name (taiyi/qiming/dept/lab) to the number of
    workers launched before the experiment, mirroring §VI-A.
    """
    clusters = testbed_clusters()
    changes = capacity_changes or {}
    setups = []
    for name, count in workers.items():
        if name not in clusters:
            raise ValueError(f"unknown cluster {name!r}")
        setups.append(
            EndpointSetup(
                name=name,
                cluster=clusters[name],
                initial_workers=count,
                max_workers=None,
                auto_scale=auto_scale,
                capacity_changes=changes.get(name, []),
            )
        )
    return setups
