"""Fig. 6 — strong and weak scaling of UniFaaS across endpoints.

The paper deploys 1–16 endpoints of 24 workers each (all on Qiming) and runs
bags of 1 s and 5 s compute-intensive tasks: strong scaling fixes the total
task count (100 000 × 1 s, 20 000 × 5 s), weak scaling fixes the work per
worker (260 × 1 s or 52 × 5 s tasks per worker).  Completion time should drop
close to ideally until scheduling/submission overheads start to dominate for
the short tasks.

The ``scale`` parameter shrinks the task counts proportionally so the
benchmark suite stays fast; the scaling *shape* is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.environment import EndpointSetup, build_simulation
from repro.faas.types import ServiceLatencyModel
from repro.sim.hardware import QIMING
from repro.sim.network import NetworkModel
from repro.workloads.synthetic import build_stress_workload

__all__ = ["ScalingPoint", "ScalingResult", "run_scaling_experiment"]

#: Paper task counts for strong scaling.
STRONG_SCALING_TASKS = {1.0: 100_000, 5.0: 20_000}
#: Paper per-worker task counts for weak scaling.
WEAK_SCALING_TASKS_PER_WORKER = {1.0: 260, 5.0: 52}
WORKERS_PER_ENDPOINT = 24


@dataclass
class ScalingPoint:
    endpoints: int
    tasks: int
    completion_time_s: float
    ideal_time_s: float

    @property
    def efficiency(self) -> float:
        if self.completion_time_s <= 0:
            return 0.0
        return self.ideal_time_s / self.completion_time_s


@dataclass
class ScalingResult:
    mode: str
    task_duration_s: float
    points: List[ScalingPoint] = field(default_factory=list)

    def completion_times(self) -> Dict[int, float]:
        return {p.endpoints: p.completion_time_s for p in self.points}

    def speedup(self) -> Dict[int, float]:
        base = self.points[0].completion_time_s if self.points else 0.0
        return {
            p.endpoints: (base / p.completion_time_s if p.completion_time_s else 0.0)
            for p in self.points
        }


def _run_one(n_endpoints: int, task_count: int, task_duration_s: float, seed: int) -> float:
    names = [f"qiming_{i}" for i in range(n_endpoints)]
    setups = [
        EndpointSetup(
            name=name,
            cluster=QIMING,
            initial_workers=WORKERS_PER_ENDPOINT,
            max_workers=WORKERS_PER_ENDPOINT,
            auto_scale=False,
            duration_jitter=0.0,
            execution_overhead_s=0.01,
        )
        for name in names
    ]
    network = NetworkModel.uniform(names, bandwidth_mbps=500.0, jitter=0.0, seed=seed)
    latency = ServiceLatencyModel(
        submit_latency_s=0.004,
        dispatch_latency_s=0.05,
        result_poll_latency_s=0.05,
        endpoint_overhead_s=0.01,
    )
    env = build_simulation(setups, network=network, latency=latency, seed=seed, batch_size=256)
    client = env.make_client(env.make_config("CAPACITY", batch_size=256))
    build_stress_workload(client, task_count, task_duration_s)
    client.run()
    return client.summary().makespan_s


def run_scaling_experiment(
    mode: str = "strong",
    task_duration_s: float = 5.0,
    endpoint_counts: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    scale: float = 1.0,
    seed: int = 0,
) -> ScalingResult:
    """Run the Fig. 6 scaling sweep and return completion times per point."""
    if mode not in ("strong", "weak"):
        raise ValueError("mode must be 'strong' or 'weak'")
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    if task_duration_s not in STRONG_SCALING_TASKS:
        raise ValueError(f"task_duration_s must be one of {sorted(STRONG_SCALING_TASKS)}")

    result = ScalingResult(mode=mode, task_duration_s=task_duration_s)
    base_time: float | None = None
    for n in endpoint_counts:
        if mode == "strong":
            tasks = max(1, int(STRONG_SCALING_TASKS[task_duration_s] * scale))
        else:
            per_worker = WEAK_SCALING_TASKS_PER_WORKER[task_duration_s]
            tasks = max(1, int(per_worker * WORKERS_PER_ENDPOINT * n * scale))
        completion = _run_one(n, tasks, task_duration_s, seed)
        if base_time is None:
            base_time = completion
        if mode == "strong":
            ideal = base_time * endpoint_counts[0] / n
        else:
            ideal = base_time
        result.points.append(
            ScalingPoint(endpoints=n, tasks=tasks, completion_time_s=completion, ideal_time_s=ideal)
        )
    return result
