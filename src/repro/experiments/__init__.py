"""Experiment harnesses reproducing the paper's evaluation (§V, §VI).

Each module regenerates one table or figure:

* :mod:`repro.experiments.environment` — builders for simulated testbeds.
* :mod:`repro.experiments.latency` — Fig. 5 latency breakdown.
* :mod:`repro.experiments.scaling` — Fig. 6 strong/weak scaling.
* :mod:`repro.experiments.elasticity` — Fig. 7 multi-endpoint elasticity.
* :mod:`repro.experiments.overhead` — Table III scheduler overhead.
* :mod:`repro.experiments.case_studies` — Tables IV/V and Figs. 9–13.
"""

from repro.experiments.environment import (
    EndpointSetup,
    SimulationEnvironment,
    build_simulation,
    paper_testbed_network,
    paper_testbed_setups,
    single_cluster_environment,
)
from repro.experiments.case_studies import (
    CaseStudyResult,
    run_case_study,
    run_dynamic_capacity_study,
    run_static_capacity_study,
)
from repro.experiments.elasticity import ElasticityResult, run_elasticity_experiment
from repro.experiments.latency import LatencyExperimentResult, run_latency_experiment
from repro.experiments.overhead import OverheadResult, run_overhead_experiment
from repro.experiments.scaling import ScalingResult, run_scaling_experiment

__all__ = [
    "CaseStudyResult",
    "ElasticityResult",
    "EndpointSetup",
    "LatencyExperimentResult",
    "OverheadResult",
    "ScalingResult",
    "SimulationEnvironment",
    "build_simulation",
    "paper_testbed_network",
    "paper_testbed_setups",
    "run_case_study",
    "run_dynamic_capacity_study",
    "run_elasticity_experiment",
    "run_latency_experiment",
    "run_overhead_experiment",
    "run_scaling_experiment",
    "run_static_capacity_study",
    "single_cluster_environment",
]
