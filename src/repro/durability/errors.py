"""Typed errors of the durability subsystem."""

from __future__ import annotations

__all__ = [
    "OrchestratorCrashed",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotStateMismatch",
    "SnapshotVersionError",
]


class SnapshotError(Exception):
    """Base class for every snapshot read/write/verify failure.

    Loading a damaged or incompatible snapshot raises a subclass of this —
    never a bare ``KeyError``/``json.JSONDecodeError`` — so recovery code
    can catch one type and fall back to an older checkpoint.
    """


class SnapshotCorruptError(SnapshotError):
    """Torn or tampered snapshot: bad magic, truncated payload, or the
    embedded SHA-256 checksum does not match the payload bytes."""


class SnapshotVersionError(SnapshotError):
    """The snapshot's ``schema_version`` is unknown to this build."""


class SnapshotStateMismatch(SnapshotError):
    """Replay reached the cut but the live state diverged from the captured
    sections — the snapshot does not describe this run."""


class OrchestratorCrashed(RuntimeError):
    """Raised out of the run loop when an :class:`OrchestratorCrash`
    timeline entry fires; caught by the recovery driver."""

    def __init__(self, at_s: float, restart_delay_s: float = 0.0) -> None:
        super().__init__(
            f"orchestrator crashed at t={at_s:g}s (restart delay {restart_delay_s:g}s)"
        )
        self.at_s = at_s
        self.restart_delay_s = restart_delay_s
