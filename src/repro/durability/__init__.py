"""Durability: versioned snapshot/restore of the full serving state.

The orchestrator is the federation's single point of failure — this package
removes it.  A snapshot is a versioned, checksummed file pairing (a) the
*replay recipe* (the serialized scenario spec + seed + cut position) with
(b) *state sections* captured from the live run: kernel counters, every
named RNG stream's bit-generator state, per-tenant task graphs and columnar
``TaskStore`` columns, the dataplane's replica catalog and in-flight
transfer jobs, scheduler claims and the serving layer's arbitration state.

Restore is a **deterministic replay**: the spec is re-executed from t=0 in a
fresh process with the snapshot point armed in *verify* mode; at the cut the
captured sections are checked against the live state (any divergence raises
:class:`SnapshotStateMismatch`), and the remaining event log must hash
byte-identically to the uninterrupted run's tail — the replay proof CI
gates on.  :class:`OrchestratorCrash` dynamics entries tear the run down
mid-storm and drive recovery from the latest valid periodic checkpoint
(torn/corrupt files are detected by the embedded checksum and skipped).
"""

from repro.durability.errors import (
    OrchestratorCrashed,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotStateMismatch,
    SnapshotVersionError,
)
from repro.durability.runtime import DurabilityController, DurabilityOptions
from repro.durability.snapshot import (
    SCHEMA_VERSION,
    Snapshot,
    latest_valid_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.durability.specio import spec_from_payload, spec_to_payload

__all__ = [
    "DurabilityController",
    "DurabilityOptions",
    "OrchestratorCrashed",
    "SCHEMA_VERSION",
    "Snapshot",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotStateMismatch",
    "SnapshotVersionError",
    "latest_valid_snapshot",
    "read_snapshot",
    "spec_from_payload",
    "spec_to_payload",
    "write_snapshot",
]
