"""Serialize a :class:`~repro.scenarios.spec.ScenarioSpec` into a snapshot.

The spec is the replay recipe: restore re-executes it deterministically from
t=0, so the snapshot must carry the *complete* scenario — workload, topology,
scheduler, dynamics (including orchestrator-crash entries) and every engine
toggle.  All scenario dataclasses are frozen compositions of JSON-safe
scalars, so serialization is a faithful field walk; the one thing that
cannot ride along is an *inline* authored workflow definition (a live object
graph of closures) — those runs must register the workflow under a name
first, and snapshotting them raises a typed
:class:`~repro.durability.errors.SnapshotError`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.durability.errors import SnapshotCorruptError, SnapshotError
from repro.scenarios.dynamics import (
    ChurnProcess,
    CrashRejoinCycle,
    DynamicsSpec,
    OrchestratorCrash,
    TimelineEvent,
)
from repro.scenarios.spec import EndpointSpec, ScenarioSpec, WorkloadSpec
from repro.streaming.spec import StreamingSpec

__all__ = ["spec_fingerprint_matches", "spec_from_payload", "spec_to_payload"]


def _flat(obj) -> Dict[str, object]:
    """Shallow dataclass-to-dict (no recursion — nested specs are explicit)."""
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def spec_to_payload(spec: ScenarioSpec) -> Dict[str, object]:
    """The JSON-safe replay recipe of ``spec``."""
    if spec.workload.definition is not None:
        raise SnapshotError(
            "inline workflow definitions cannot be snapshotted; register the "
            "workflow under a name (authoring registry) and reference it by kind"
        )
    workload = _flat(spec.workload)
    workload.pop("definition")
    dynamics = {
        "scripted": [_flat(e) for e in spec.dynamics.scripted],
        "churn": _flat(spec.dynamics.churn) if spec.dynamics.churn else None,
        "crashes": _flat(spec.dynamics.crashes) if spec.dynamics.crashes else None,
        "orchestrator": [_flat(c) for c in spec.dynamics.orchestrator],
        "target_endpoints": list(spec.dynamics.target_endpoints),
        "horizon_s": spec.dynamics.horizon_s,
    }
    payload = _flat(spec)
    payload["workload"] = workload
    payload["topology"] = [_flat(e) for e in spec.topology]
    payload["dynamics"] = dynamics
    payload["tenant_weights"] = list(spec.tenant_weights)
    if spec.streaming is not None:
        streaming = _flat(spec.streaming)
        streaming["scripted_arrivals"] = list(spec.streaming.scripted_arrivals)
        streaming["slo_choices"] = list(spec.streaming.slo_choices)
        payload["streaming"] = streaming
    else:
        payload["streaming"] = None
    return payload


def spec_from_payload(payload: Dict[str, object]) -> ScenarioSpec:
    """Rebuild the spec a snapshot was taken from."""
    try:
        data = dict(payload)
        workload = WorkloadSpec(**{**data.pop("workload")})
        topology = tuple(EndpointSpec(**e) for e in data.pop("topology"))
        dyn: Dict[str, object] = dict(data.pop("dynamics"))
        dynamics = DynamicsSpec(
            scripted=tuple(TimelineEvent(**e) for e in dyn["scripted"]),
            churn=ChurnProcess(**dyn["churn"]) if dyn["churn"] else None,
            crashes=CrashRejoinCycle(**dyn["crashes"]) if dyn["crashes"] else None,
            orchestrator=tuple(
                OrchestratorCrash(**c) for c in dyn.get("orchestrator", [])
            ),
            target_endpoints=tuple(dyn["target_endpoints"]),
            horizon_s=float(dyn["horizon_s"]),
        )
        data["tenant_weights"] = tuple(data.get("tenant_weights", ()))
        streaming = data.pop("streaming", None)
        if streaming is not None:
            streaming = dict(streaming)
            streaming["scripted_arrivals"] = tuple(streaming["scripted_arrivals"])
            streaming["slo_choices"] = tuple(streaming["slo_choices"])
            streaming = StreamingSpec(**streaming)
        data["streaming"] = streaming
        return ScenarioSpec(
            workload=workload, topology=topology, dynamics=dynamics, **data
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorruptError(
            f"snapshot carries an unreadable scenario spec: {exc}"
        ) from exc


def spec_fingerprint_matches(spec: ScenarioSpec, payload: Dict[str, object]) -> bool:
    """True when ``payload`` describes exactly ``spec`` (restore safety check)."""
    import json

    a = json.dumps(spec_to_payload(spec), sort_keys=True)
    b = json.dumps(payload, sort_keys=True)
    return a == b


def describe_mismatch(spec: ScenarioSpec, payload: Dict[str, object]) -> List[str]:
    """Field-level differences between ``spec`` and a snapshot's recipe."""
    mine = spec_to_payload(spec)
    diffs = []
    for key in sorted(set(mine) | set(payload)):
        if mine.get(key) != payload.get(key):
            diffs.append(key)
    return diffs
