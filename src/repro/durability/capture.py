"""Capture and verify the live state sections of a running scenario.

Capture walks every layer the ISSUE names — kernel clock + event counters,
named RNG streams, per-tenant task graphs and columnar ``TaskStore``
columns, scheduler claims, the dataplane's replica catalog and in-flight
transfer jobs, and the serving layer's arbitration/admission state — into a
JSON-native dict.  Large per-task detail is folded into SHA-256 digests so a
checkpoint of a 20k-task run stays small while still pinning every byte of
state.

All capture functions are **read-only**: the snapshot-point kernel event
runs them mid-simulation in both the capture run and the restore run, so
they must not perturb the event sequence (that is what keeps the two runs'
logs byte-identical).

Verify is strict recursive equality with path-reporting; any divergence at
the cut raises :class:`~repro.durability.errors.SnapshotStateMismatch`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

import numpy as np

from repro.durability.errors import SnapshotStateMismatch

__all__ = ["capture_sections", "verify_sections"]

#: Above this many tasks, per-task rows are digest-only (the digest still
#: covers every row byte-for-byte; the rows are omitted to bound file size).
_INLINE_TASK_LIMIT = 4096


def _r(value: float) -> float:
    return round(float(value), 9)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def capture_sections(ctx) -> Dict[str, object]:
    """The full verification manifest of a live run (JSON-native)."""
    kernel = ctx.env.kernel
    sections: Dict[str, object] = {
        "kernel": {
            "now": _r(kernel.now()),
            "events_processed": kernel.events_processed,
            "pending_events": kernel.pending_events,
            "pending_total": kernel.pending_events_total,
        },
        "rng": ctx.env.rng.get_state(),
        "workflows": {
            key: _capture_engine(engine, ctx)
            for key, engine in sorted(ctx.engines.items())
        },
        "dataplane": _capture_data_manager(ctx.data_manager),
    }
    if ctx.manager is not None:
        sections["serving"] = _capture_serving(ctx.manager)
    if getattr(ctx, "streaming", None) is not None:
        sections["streaming"] = _capture_streaming(ctx.streaming)
    if getattr(ctx, "placement", None) is not None:
        # Plan state plus the dedicated "placement" RNG stream: the replay
        # proof requires the restored run's solves to continue bit-identically.
        sections["placement"] = ctx.placement.capture_state()
    return sections


# ------------------------------------------------------------------ engines
def _capture_engine(engine, ctx) -> Dict[str, object]:
    graph = engine.graph
    rows: List[List[object]] = []
    for task_id in sorted(t.task_id for t in graph):
        task = graph.get(task_id)
        rows.append(
            [
                task.task_id,
                task.state.name,
                int(task.attempts),
                task.assigned_endpoint or "",
            ]
        )
    graph_digest = _sha(repr(rows))
    section: Dict[str, object] = {
        "tasks": len(rows),
        "graph_sha256": graph_digest,
        "columns_sha256": _columns_digest(graph.store),
        "bus_published": engine.bus.published_count,
        "scheduler": {
            "type": type(engine.scheduler).__name__,
            "claims": {
                name: int(engine.scheduler.claimed(name))
                for name in sorted(ctx.env.fabric.endpoint_names())
            },
        },
    }
    if len(rows) <= _INLINE_TASK_LIMIT:
        section["rows"] = rows
    return section


def _columns_digest(store) -> str:
    """One digest over every live row of every TaskStore column."""
    size = len(store)
    digest = hashlib.sha256()
    for name in ("state", "cores", "input_mb", "priority", "endpoint"):
        column = getattr(store, name)
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(column[:size]).tobytes())
    for name in sorted(store.timestamps):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(store.timestamps[name][:size]).tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------- dataplane
def _capture_data_manager(dm) -> Dict[str, object]:
    if dm is None:
        return {}
    store = getattr(dm, "store", None)
    if store is None:
        # The paper's FIFO staging path: volume counters are the state.
        return {
            "type": type(dm).__name__,
            "total_transferred_mb": _r(dm.total_transferred_mb),
        }
    replicas: List[List[object]] = []
    for endpoint in sorted(store.endpoints()):
        for file_id in sorted(store._replicas.get(endpoint, {})):
            replica = store._replicas[endpoint][file_id]
            replicas.append(
                [
                    endpoint,
                    file_id,
                    _r(replica.size_mb),
                    sorted(replica.pinned_by),
                    bool(replica.prefetched),
                    bool(replica.used),
                    int(replica.last_touch),
                ]
            )
    jobs = [
        [
            job.request.file.file_id,
            job.request.src,
            job.request.dst,
            int(job.klass),
            _r(job.priority),
            int(job.seq),
            bool(job.started),
            len(job.tickets),
        ]
        for job in dm.transfers.active_jobs()
    ]
    return {
        "type": type(dm).__name__,
        "replicas": len(replicas),
        "replicas_sha256": _sha(repr(replicas)),
        "usage_mb": {
            endpoint: _r(store.usage_mb(endpoint))
            for endpoint in sorted(store.endpoints())
        },
        "offline": sorted(store._offline),
        "transfer_jobs": len(jobs),
        "transfer_jobs_sha256": _sha(repr(jobs)),
        "tickets": {
            # In-flight staging tickets only: one authoritative ticket per
            # task, dropped from the manifest once its staging completed.
            task: ticket.destination
            for task, ticket in sorted(dm._tickets_by_task.items())
            if ticket.completed_at is None
        },
        "stats": dm.stats_dict(),
    }


# ------------------------------------------------------------------ serving
def _capture_serving(manager) -> Dict[str, object]:
    section: Dict[str, object] = {
        "policy": manager.policy.name,
        "workflows": {
            handle.workflow_id: {
                "started": bool(handle.started),
                "finished": bool(handle.finished),
                "paused": bool(getattr(handle, "paused", False)),
            }
            for handle in manager.workflows()
        },
        "last_scaling_check": _r(manager._last_scaling_check),
    }
    served = getattr(manager.policy, "_served", None)
    if served is not None:
        section["served"] = {wid: int(v) for wid, v in sorted(served.items())}
    return section


# ---------------------------------------------------------------- streaming
def _capture_streaming(service) -> Dict[str, object]:
    """The open-loop stream's live state at the cut.

    Pins the arrival process position (so the ``arrivals`` RNG stream state
    and the next scheduled arrival agree), the admission queue contents, and
    every steady-state counter — a replay that diverges anywhere in the
    admit/reject/abandon/retire sequence fails verification here.
    """
    arrivals = service.arrivals
    admission = service.admission
    metrics = service.metrics
    return {
        "arrivals": {
            "emitted": int(arrivals.emitted),
            "total_emitted": int(arrivals.total_emitted),
            "next_arrival_s": _r(arrivals.next_arrival_s)
            if arrivals.next_arrival_s is not None
            else None,
            "pending_scripted": int(arrivals._pending_scripted),
        },
        "admission": {
            "pending": [
                [a.workflow_id, _r(a.arrival_s), _r(a.slo_s), bool(a.scripted)]
                for a in admission.pending
            ],
            "submitted": int(admission.submitted),
            "admitted": int(admission.admitted),
            "rejected": int(admission.rejected),
            "abandoned": int(admission.abandoned),
            "queue_depth_peak": int(admission.queue_depth_peak),
        },
        "active": int(service.active),
        "active_peak": int(service.active_peak),
        "retired": int(service.manager.retired_count),
        "metrics": {
            "completed": int(metrics.completed),
            "deadline_misses": int(metrics.deadline_misses),
            "queue_wait_mean_s": _r(metrics.queue_wait.mean()),
            "response_mean_s": _r(metrics.response.mean()),
        },
    }


# ------------------------------------------------------------------- verify
def verify_sections(
    expected: Dict[str, object], actual: Dict[str, object], context: str
) -> None:
    """Raise :class:`SnapshotStateMismatch` unless ``actual == expected``."""
    diffs: List[str] = []
    _diff("", expected, actual, diffs)
    if diffs:
        shown = "; ".join(diffs[:8])
        more = f" (+{len(diffs) - 8} more)" if len(diffs) > 8 else ""
        raise SnapshotStateMismatch(
            f"{context}: replayed state diverged from the snapshot at {shown}{more}"
        )


def _diff(path: str, expected, actual, out: List[str], limit: int = 64) -> None:
    if len(out) >= limit:
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in expected:
                out.append(f"{sub} (unexpected)")
            elif key not in actual:
                out.append(f"{sub} (missing)")
            else:
                _diff(sub, expected[key], actual[key], out, limit)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(f"{path} (length {len(actual)} != {len(expected)})")
            return
        for index, (e, a) in enumerate(zip(expected, actual)):
            _diff(f"{path}[{index}]", e, a, out, limit)
        return
    if _normalize(expected) != _normalize(actual):
        out.append(f"{path} ({actual!r} != {expected!r})")


def _normalize(value):
    # The expected side round-trips through JSON (ints/floats unify, tuples
    # become lists); mirror that on the live side before comparing.
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, tuple):
        return [_normalize(v) for v in value]
    return value


def make_cut(
    kind: str,
    index: int,
    time_s: float,
    events_processed: int,
    log_counts: Dict[str, int],
    log_prefixes: Dict[str, str],
) -> Dict[str, object]:
    """The cut descriptor embedded in a snapshot."""
    return {
        "kind": kind,
        "index": int(index),
        "time_s": _r(time_s),
        "events_processed": int(events_processed),
        "log_counts": dict(log_counts),
        "log_prefix_sha256": dict(log_prefixes),
    }


def recorder_prefix_digest(entries: List, count: Optional[int] = None) -> str:
    """Digest of a recorder's first ``count`` entries (all when ``None``)."""
    view = entries if count is None else entries[:count]
    return _sha(repr(view))
