"""The durability controller: snapshot points, checkpoints, crash recovery.

One :class:`DurabilityController` is wired into a scenario attempt by
:func:`repro.scenarios.spec.run_scenario` at a **fixed call-site** (right
after the dynamics timeline is installed, before the workload is built).
That fixed position matters: every kernel event the controller schedules
consumes a sequence number, and the capture run and the restore run must
consume them at identical positions for their event logs to stay
byte-identical.  The controller therefore always arms the same *shape* of
events for a given spec — a one-shot cut point, the periodic checkpoint
chain, and one entry per orchestrator crash (live or already-fired no-op) —
and only the callbacks differ between capture and verify mode.  All capture
callbacks are read-only with respect to the simulation.

Restore is deterministic replay: the run re-executes from t=0; at the cut
the controller checks the recorders' event-log counts and prefix digests
and every captured state section against the live run, then marks the tail
start.  The tail digest over the remaining event log is the replay proof.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.durability.capture import (
    capture_sections,
    make_cut,
    recorder_prefix_digest,
    verify_sections,
)
from repro.durability.errors import OrchestratorCrashed, SnapshotError
from repro.durability.snapshot import Snapshot, checkpoint_path, write_snapshot
from repro.durability.specio import describe_mismatch, spec_to_payload

__all__ = [
    "DurabilityController",
    "DurabilityOptions",
    "RunContext",
    "load_restore_snapshot",
    "reset_global_id_counters",
]


def reset_global_id_counters() -> None:
    """Restart the process-global task/file/ticket/transfer id counters.

    Ordinary runs never care about the absolute values of these ids (event
    ``describe()`` tuples deliberately exclude them), but durability capture
    pins raw ids into snapshot sections — so every durability-engaged
    attempt starts the counters from zero, making a replay in the *same*
    process produce the same ids a fresh process would.
    """
    import itertools

    from repro.core import dag
    from repro.data import manager as data_manager_module
    from repro.data import remote_file, transfer

    dag._task_counter = itertools.count()
    remote_file._file_counter = itertools.count()
    data_manager_module._ticket_counter = itertools.count()
    transfer._transfer_counter = itertools.count()


@dataclass
class DurabilityOptions:
    """CLI/API-level durability knobs of one :func:`run_scenario` call."""

    #: Capture a one-shot snapshot when simulated time reaches this.
    snapshot_at: Optional[float] = None
    #: Where the one-shot snapshot is written (``None`` keeps it in memory).
    snapshot_path: Optional[str] = None
    #: Restore (replay + verify) from this snapshot file.
    restore_from: Optional[str] = None
    #: Directory for periodic ``ckpt-*.snap`` files (the scenario's
    #: ``checkpoint_interval_s`` drives the cadence).
    checkpoint_dir: Optional[str] = None

    @property
    def engaged(self) -> bool:
        return (
            self.snapshot_at is not None
            or self.restore_from is not None
            or self.checkpoint_dir is not None
        )


class RunContext:
    """The live objects of one scenario attempt the controller captures.

    ``engines`` and ``recorders`` are keyed by workflow id ("" on the
    single-workflow path); ``manager`` is the serving layer's
    :class:`~repro.serving.manager.WorkflowManager` or ``None``.
    """

    def __init__(self, env, spec, seed: int) -> None:
        self.env = env
        self.spec = spec
        self.seed = int(seed)
        self.engines: Dict[str, object] = {}
        self.recorders: Dict[str, object] = {}
        self.data_manager = None
        self.manager = None
        #: The open-loop :class:`~repro.streaming.service.StreamingService`
        #: of a streaming attempt (``None`` on batch paths).
        self.streaming = None
        #: The :class:`~repro.placement.service.PlacementService` of the
        #: attempt (``None`` when the placement plan is disabled).
        self.placement = None


class DurabilityController:
    """Arms the durability events of one attempt and owns its cut state."""

    def __init__(
        self,
        ctx: RunContext,
        *,
        snapshot_at: Optional[float] = None,
        snapshot_path: Optional[str] = None,
        checkpoint_interval_s: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        restore: Optional[Snapshot] = None,
        crashes: Sequence = (),
        crashes_fired: int = 0,
    ) -> None:
        if snapshot_at is not None and restore is not None:
            raise SnapshotError(
                "snapshot_at and restore are mutually exclusive within one attempt"
            )
        self.ctx = ctx
        self.snapshot_at = snapshot_at
        self.snapshot_path = snapshot_path
        self.checkpoint_interval_s = checkpoint_interval_s
        self.checkpoint_dir = checkpoint_dir
        self.restore = restore
        self.crashes = tuple(crashes)
        self.crashes_fired = int(crashes_fired)
        self._spec_payload = spec_to_payload(ctx.spec)
        #: Event-log lengths at the cut; the tail digest starts here.
        self.tail_marks: Optional[Dict[str, int]] = None
        #: The one-shot snapshot captured by this attempt (if any).
        self.captured: Optional[Snapshot] = None
        self.verified = False
        self.checkpoints_written = 0
        self.last_checkpoint_s: Optional[float] = None

    # ----------------------------------------------------------------- arm
    def install(self) -> None:
        """Schedule the attempt's durability events (fixed shape per spec)."""
        kernel = self.ctx.env.kernel
        if self.snapshot_at is not None:
            kernel.schedule_at(
                self.snapshot_at, self._oneshot_point, daemon=True,
                label="durability-snapshot",
            )
        elif self.restore is not None and self.restore.cut.get("kind") == "oneshot":
            kernel.schedule_at(
                float(self.restore.cut["time_s"]), self._oneshot_point,
                daemon=True, label="durability-verify",
            )
        if self.checkpoint_interval_s is not None:
            kernel.schedule_at(
                self.checkpoint_interval_s, self._ckpt_tick, 1,
                daemon=True, label="durability-ckpt",
            )
        for index, crash in enumerate(self.crashes):
            kernel.schedule_at(
                crash.at_s, self._crash_point, crash,
                index >= self.crashes_fired,
                daemon=True, label="durability-orch-crash",
            )

    # ------------------------------------------------------------ callbacks
    def _oneshot_point(self) -> None:
        if self.restore is not None:
            self._verify_cut("one-shot cut")
            return
        self.captured = self._make_snapshot("oneshot", 0)
        self.tail_marks = dict(self.captured.cut["log_counts"])
        if self.snapshot_path is not None:
            write_snapshot(self.captured, self.snapshot_path)

    def _ckpt_tick(self, index: int) -> None:
        cut = self.restore.cut if self.restore is not None else None
        if cut is not None and cut.get("kind") == "ckpt" and int(cut["index"]) == index:
            self._verify_cut(f"checkpoint {index}")
        else:
            snapshot = self._make_snapshot("ckpt", index)
            if self.checkpoint_dir is not None:
                write_snapshot(snapshot, checkpoint_path(self.checkpoint_dir, index))
            self.checkpoints_written += 1
            self.last_checkpoint_s = self.ctx.env.kernel.now()
        self.ctx.env.kernel.schedule_at(
            (index + 1) * self.checkpoint_interval_s, self._ckpt_tick, index + 1,
            daemon=True, label="durability-ckpt",
        )

    def _crash_point(self, crash, live: bool) -> None:
        if live:
            raise OrchestratorCrashed(crash.at_s, crash.restart_delay_s)

    # -------------------------------------------------------------- capture
    def _make_snapshot(self, kind: str, index: int) -> Snapshot:
        kernel = self.ctx.env.kernel
        log_counts = {
            key: len(recorder.entries)
            for key, recorder in sorted(self.ctx.recorders.items())
        }
        log_prefixes = {
            key: recorder_prefix_digest(recorder.entries)
            for key, recorder in sorted(self.ctx.recorders.items())
        }
        return Snapshot(
            scenario=self._spec_payload,
            seed=self.ctx.seed,
            cut=make_cut(
                kind, index, kernel.now(), kernel.events_processed,
                log_counts, log_prefixes,
            ),
            sections=capture_sections(self.ctx),
        )

    def _verify_cut(self, context: str) -> None:
        snapshot = self.restore
        cut = snapshot.cut
        for key, count in cut["log_counts"].items():
            recorder = self.ctx.recorders.get(key)
            if recorder is None:
                raise SnapshotError(
                    f"{context}: snapshot references unknown workflow {key!r}"
                )
            if len(recorder.entries) != count:
                raise SnapshotError(
                    f"{context}: replay produced {len(recorder.entries)} events for "
                    f"{key or 'the workflow'}, snapshot recorded {count}"
                )
            prefix = recorder_prefix_digest(recorder.entries, count)
            if prefix != cut["log_prefix_sha256"].get(key):
                raise SnapshotError(
                    f"{context}: replayed event-log prefix diverged for "
                    f"{key or 'the workflow'}"
                )
        verify_sections(snapshot.sections, capture_sections(self.ctx), context)
        self.verified = True
        self.tail_marks = dict(cut["log_counts"])

    # --------------------------------------------------------------- report
    def tail_digest(self) -> Tuple[str, int]:
        """SHA-256 over every recorder's post-cut entries, and their count."""
        if self.tail_marks is None:
            raise SnapshotError("no cut was reached; there is no tail to digest")
        digest = hashlib.sha256()
        total = 0
        for key in sorted(self.ctx.recorders):
            mark = self.tail_marks.get(key, 0)
            entries = self.ctx.recorders[key].entries
            digest.update(key.encode())
            digest.update(repr(entries[mark:]).encode())
            total += max(0, len(entries) - mark)
        return digest.hexdigest(), total

    def finish(self) -> Dict[str, object]:
        """The result's ``durability`` payload (raises if a cut was missed)."""
        payload: Dict[str, object] = {}
        if self.snapshot_at is not None:
            if self.captured is None:
                raise SnapshotError(
                    f"snapshot_at={self.snapshot_at:g}s was never reached "
                    "(the run finished earlier)"
                )
            tail, entries = self.tail_digest()
            payload["snapshot"] = {
                "at_s": round(float(self.snapshot_at), 6),
                "events_before_cut": int(self.captured.cut["events_processed"]),
                "payload_sha256": self.captured.payload_sha256(),
                "tail_digest": tail,
                "tail_entries": entries,
            }
        if self.restore is not None:
            if not self.verified:
                raise SnapshotError(
                    "the restore cut was never reached during replay "
                    "(snapshot taken beyond this run's end?)"
                )
            tail, entries = self.tail_digest()
            payload["restore"] = {
                "verified_at_s": float(self.restore.cut["time_s"]),
                "replayed_entries": sum(self.restore.cut["log_counts"].values()),
                "tail_digest": tail,
                "tail_entries": entries,
            }
            if self.restore.cut.get("kind") == "oneshot":
                # Snapshot payload digests cover engine-internal state, which
                # legitimately differs between the columnar/scalar and
                # vector/scalar modes; only the explicit snapshot→restore
                # pairing (always same-mode, what check-replay verifies)
                # reports it.  Checkpoint-recovery payloads stay
                # byte-identical across modes.
                payload["restore"]["payload_sha256"] = self.restore.payload_sha256()
        if self.checkpoint_interval_s is not None:
            payload["checkpoints"] = {
                "interval_s": round(float(self.checkpoint_interval_s), 6),
                "written": self.checkpoints_written,
                "last_time_s": round(self.last_checkpoint_s, 6)
                if self.last_checkpoint_s is not None
                else None,
            }
        return payload


def load_restore_snapshot(path: str, spec, seed: int) -> Snapshot:
    """Read a snapshot and check it matches the scenario about to replay."""
    from repro.durability.snapshot import read_snapshot

    snapshot = read_snapshot(path)
    if snapshot.seed != int(seed):
        raise SnapshotError(
            f"snapshot {path} was taken with seed {snapshot.seed}, "
            f"this run uses {seed}"
        )
    diffs = describe_mismatch(spec, snapshot.scenario)
    if diffs:
        raise SnapshotError(
            f"snapshot {path} was taken from a different scenario "
            f"(differs at: {', '.join(diffs[:6])})"
        )
    return snapshot
