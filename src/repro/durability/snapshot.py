"""The snapshot file format: versioned, checksummed, atomically written.

A snapshot file is plain text in three parts::

    repro-snapshot <schema_version>\\n
    <sha256 hex of the payload bytes>\\n
    <payload: canonical JSON (sorted keys, compact separators)>

The checksum on line 2 covers every byte after its newline, so a torn write
(truncated payload), bit rot or manual tampering is detected on read and
surfaces as :class:`~repro.durability.errors.SnapshotCorruptError` — never
as a ``KeyError`` deep inside restore.  An unrecognised version on line 1
raises :class:`~repro.durability.errors.SnapshotVersionError`.  Writes go
through a temporary file + :func:`os.replace`, so a crash mid-write leaves
either the old snapshot or none — a half-written file can only exist under
the temporary name, which readers never look at.

Periodic checkpoints are named ``ckpt-<index>.snap`` inside a checkpoint
directory; :func:`latest_valid_snapshot` walks them newest-first and
returns the first one that still reads back clean, which is exactly the
fallback crash recovery needs when the newest checkpoint is torn.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.durability.errors import (
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
)

__all__ = [
    "SCHEMA_VERSION",
    "Snapshot",
    "checkpoint_path",
    "latest_valid_snapshot",
    "read_snapshot",
    "write_snapshot",
]

#: Format version this build writes and the only one it reads.
SCHEMA_VERSION = 1

_MAGIC = "repro-snapshot"
_CKPT_PATTERN = re.compile(r"^ckpt-(\d+)\.snap$")


@dataclass
class Snapshot:
    """One captured cut of a scenario run.

    ``scenario`` is the serialized :class:`~repro.scenarios.spec.ScenarioSpec`
    (the replay recipe), ``cut`` pins where in the run the capture happened
    (kind, time, per-recorder event-log counts and prefix digests), and
    ``sections`` holds the verification manifest of live state.
    """

    scenario: Dict[str, object]
    seed: int
    cut: Dict[str, object]
    sections: Dict[str, object] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def payload(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "scenario": self.scenario,
            "seed": self.seed,
            "cut": self.cut,
            "sections": self.sections,
        }

    def payload_sha256(self) -> str:
        """Digest of the canonical payload bytes (the file's checksum)."""
        return hashlib.sha256(_canonical(self.payload())).hexdigest()


def _canonical(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def write_snapshot(snapshot: Snapshot, path: str | Path) -> Path:
    """Atomically write ``snapshot`` to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = _canonical(snapshot.payload())
    checksum = hashlib.sha256(body).hexdigest()
    data = f"{_MAGIC} {snapshot.schema_version}\n{checksum}\n".encode() + body
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)
    return path


def read_snapshot(path: str | Path) -> Snapshot:
    """Read and validate a snapshot file.

    Raises :class:`SnapshotCorruptError` on bad magic, truncation or
    checksum mismatch, :class:`SnapshotVersionError` on an unknown
    ``schema_version``, :class:`SnapshotError` when the file is missing.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc

    header, _, rest = data.partition(b"\n")
    parts = header.decode("utf-8", errors="replace").split()
    if len(parts) != 2 or parts[0] != _MAGIC:
        raise SnapshotCorruptError(f"{path}: not a repro snapshot (bad magic line)")
    try:
        version = int(parts[1])
    except ValueError:
        raise SnapshotCorruptError(f"{path}: malformed schema version {parts[1]!r}") from None
    if version != SCHEMA_VERSION:
        raise SnapshotVersionError(
            f"{path}: unknown schema_version {version} (this build reads {SCHEMA_VERSION})"
        )

    checksum_line, sep, body = rest.partition(b"\n")
    if not sep:
        raise SnapshotCorruptError(f"{path}: truncated snapshot (no payload)")
    expected = checksum_line.decode("utf-8", errors="replace").strip()
    actual = hashlib.sha256(body).hexdigest()
    if actual != expected:
        raise SnapshotCorruptError(
            f"{path}: payload checksum mismatch (torn or corrupt snapshot)"
        )
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:  # checksum collision is ~impossible;
        # still map a malformed payload onto the typed error.
        raise SnapshotCorruptError(f"{path}: payload is not valid JSON") from exc
    try:
        return Snapshot(
            scenario=payload["scenario"],
            seed=int(payload["seed"]),
            cut=payload["cut"],
            sections=payload.get("sections", {}),
            schema_version=int(payload["schema_version"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorruptError(f"{path}: payload is missing required fields") from exc


def checkpoint_path(directory: str | Path, index: int) -> Path:
    """Canonical file name of periodic checkpoint ``index``."""
    return Path(directory) / f"ckpt-{index:05d}.snap"


def latest_valid_snapshot(
    directory: str | Path,
) -> Tuple[Optional[Path], Optional[Snapshot], List[str]]:
    """Newest checkpoint in ``directory`` that reads back clean.

    Returns ``(path, snapshot, skipped)`` where ``skipped`` names the newer
    checkpoints that failed validation (torn/corrupt/unknown version) and
    were passed over.  ``(None, None, skipped)`` when none is usable.
    """
    directory = Path(directory)
    candidates: List[Tuple[int, Path]] = []
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _CKPT_PATTERN.match(entry.name)
            if match:
                candidates.append((int(match.group(1)), entry))
    skipped: List[str] = []
    for _, path in sorted(candidates, reverse=True):
        try:
            return path, read_snapshot(path), skipped
        except SnapshotError:
            skipped.append(path.name)
    return None, None, skipped
