"""Endpoint monitor with the local mocking mechanism (§IV-B).

The scheduler needs real-time endpoint information (idle workers, queued
tasks) but the service only refreshes endpoint status periodically, and
polling it aggressively would overload it.  UniFaaS therefore keeps a *mock
endpoint* per genuine endpoint: a local proxy with the same attributes that
is updated instantaneously when UniFaaS itself dispatches a task or receives
a result, and re-synchronised with the service's (stale) view periodically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.exceptions import EndpointError
from repro.faas.types import EndpointStatus

__all__ = ["EndpointMonitor", "MockEndpoint"]


@dataclass
class MockEndpoint:
    """Local proxy mirroring one genuine endpoint."""

    name: str
    active_workers: int = 0
    busy_workers: int = 0
    pending_tasks: int = 0
    max_workers: int = 1
    cores_per_node: int = 1
    cpu_freq_ghz: float = 1.0
    ram_gb: float = 1.0
    online: bool = True
    #: Tasks UniFaaS has dispatched that the endpoint has not finished yet.
    outstanding_tasks: int = 0
    last_synced_at: float = 0.0

    @property
    def idle_workers(self) -> int:
        return max(0, self.active_workers - self.busy_workers)

    @property
    def free_capacity(self) -> int:
        """Workers that could accept a new task right now (mocked view)."""
        return max(0, self.active_workers - self.busy_workers - self.pending_tasks)

    def hardware_features(self) -> tuple[float, float, float]:
        return (float(self.cores_per_node), self.cpu_freq_ghz, self.ram_gb)

    # ------------------------------------------------------------- mock ops
    def record_dispatch(self, cores: int = 1) -> None:
        """Mirror a task dispatch: occupy a worker or queue the mock task."""
        self.outstanding_tasks += 1
        if self.idle_workers >= cores:
            self.busy_workers += cores
        else:
            self.pending_tasks += 1

    def record_completion(self, cores: int = 1) -> None:
        """Mirror a task completion: free the worker / pop the mock queue."""
        self.outstanding_tasks = max(0, self.outstanding_tasks - 1)
        if self.pending_tasks > 0:
            self.pending_tasks -= 1
        else:
            self.busy_workers = max(0, self.busy_workers - cores)

    def synchronize(self, status: EndpointStatus, now: float) -> bool:
        """Overwrite the mock with a fresh service snapshot.

        Returns True when the *hardware* features changed — capacity counters
        change on every sync, but consumers memoizing hardware-dependent
        predictions only need to know about hardware changes.
        """
        hardware_changed = (
            self.cores_per_node != status.cores_per_node
            or self.cpu_freq_ghz != status.cpu_freq_ghz
            or self.ram_gb != status.ram_gb
        )
        self.active_workers = status.active_workers
        self.busy_workers = status.busy_workers
        self.pending_tasks = status.pending_tasks
        self.max_workers = status.max_workers
        self.cores_per_node = status.cores_per_node
        self.cpu_freq_ghz = status.cpu_freq_ghz
        self.ram_gb = status.ram_gb
        self.online = status.online
        self.last_synced_at = now
        return hardware_changed


class EndpointMonitor:
    """Maintains one :class:`MockEndpoint` per configured endpoint."""

    def __init__(
        self,
        status_provider: Callable[[str], EndpointStatus],
        clock,
        *,
        sync_interval_s: float = 60.0,
        mocking_enabled: bool = True,
    ) -> None:
        if sync_interval_s <= 0:
            raise ValueError("sync_interval_s must be positive")
        self._status_provider = status_provider
        self._clock = clock
        self.sync_interval_s = sync_interval_s
        #: When disabled (ablation), every query re-reads the stale service
        #: status instead of using the locally mocked state.
        self.mocking_enabled = mocking_enabled
        self._mocks: Dict[str, MockEndpoint] = {}
        self.sync_count = 0
        #: Bumped when a synchronisation changed some endpoint's *hardware*
        #: features (cores/frequency/RAM) — the generation stamp for caches
        #: of hardware-dependent predictions.
        self.hardware_version = 0
        #: Bumped whenever any mock's *capacity* state may have changed
        #: (dispatch, completion, registration, a sync that moved a counter).
        #: The vectorized schedulers' endpoint-state vectors re-read the
        #: mocks only when this version moves, instead of per task.
        self.state_version = 0

    # ----------------------------------------------------------- registration
    def register(self, endpoint_name: str) -> MockEndpoint:
        """Create the mock endpoint, initialising it from the service."""
        if endpoint_name in self._mocks:
            raise EndpointError(f"endpoint {endpoint_name!r} already monitored")
        mock = MockEndpoint(name=endpoint_name)
        status = self._status_provider(endpoint_name)
        mock.synchronize(status, self._clock.now())
        self._mocks[endpoint_name] = mock
        self.state_version += 1
        return mock

    def endpoint_names(self) -> List[str]:
        return list(self._mocks)

    def mock(self, endpoint_name: str) -> MockEndpoint:
        try:
            mock = self._mocks[endpoint_name]
        except KeyError:
            raise EndpointError(f"endpoint {endpoint_name!r} is not monitored") from None
        if not self.mocking_enabled:
            if mock.synchronize(self._status_provider(endpoint_name), self._clock.now()):
                self.hardware_version += 1
            self.state_version += 1
        return mock

    # --------------------------------------------------------------- updates
    def record_dispatch(self, endpoint_name: str, cores: int = 1) -> None:
        self.mock(endpoint_name).record_dispatch(cores)
        self.state_version += 1

    def record_completion(self, endpoint_name: str, cores: int = 1) -> None:
        self.mock(endpoint_name).record_completion(cores)
        self.state_version += 1

    def synchronize(self, force: bool = False) -> None:
        """Re-sync every mock whose snapshot is older than the sync interval."""
        now = self._clock.now()
        for name, mock in self._mocks.items():
            if force or now - mock.last_synced_at >= self.sync_interval_s:
                before = (
                    mock.active_workers,
                    mock.busy_workers,
                    mock.pending_tasks,
                    mock.max_workers,
                    mock.online,
                )
                if mock.synchronize(self._status_provider(name), now):
                    self.hardware_version += 1
                after = (
                    mock.active_workers,
                    mock.busy_workers,
                    mock.pending_tasks,
                    mock.max_workers,
                    mock.online,
                )
                if after != before:
                    self.state_version += 1
                self.sync_count += 1

    # ---------------------------------------------------------------- queries
    def idle_workers(self, endpoint_name: str) -> int:
        return self.mock(endpoint_name).idle_workers

    def free_capacity(self, endpoint_name: str) -> int:
        return self.mock(endpoint_name).free_capacity

    def active_workers(self, endpoint_name: str) -> int:
        return self.mock(endpoint_name).active_workers

    def total_active_workers(self) -> int:
        return sum(m.active_workers for m in self._mocks.values())

    def total_outstanding_tasks(self) -> int:
        return sum(m.outstanding_tasks for m in self._mocks.values())

    def capacities(self) -> Dict[str, int]:
        """Current worker capacity per endpoint (Capacity scheduler input)."""
        return {name: mock.active_workers for name, mock in self._mocks.items()}

    def endpoints_with_capacity(self, cores: int = 1) -> List[str]:
        """Endpoints whose mocked view has at least ``cores`` free workers."""
        return [
            name
            for name, mock in self._mocks.items()
            if mock.online and mock.free_capacity >= cores
        ]
