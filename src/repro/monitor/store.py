"""Local history store of task and transfer observations (§IV-B).

Monitored information is streamed into a local database that acts as
historical knowledge: a user can start a workflow from an existing database
so the profilers can pre-build performance models.  SQLite (standard library)
is used so the store can be kept purely in memory for experiments or written
to a file for reuse across runs.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["HistoryStore", "NullHistoryStore", "TaskRecord", "TransferRecord"]


@dataclass(frozen=True)
class TaskRecord:
    """One observed task execution (the execution profiler's training rows)."""

    function_name: str
    endpoint: str
    input_mb: float
    output_mb: float
    execution_time_s: float
    cores_per_node: int
    cpu_freq_ghz: float
    ram_gb: float
    success: bool
    timestamp: float


@dataclass(frozen=True)
class TransferRecord:
    """One observed transfer (the transfer profiler's training rows)."""

    src: str
    dst: str
    size_mb: float
    duration_s: float
    mechanism: str
    concurrency: int
    success: bool
    timestamp: float


class HistoryStore:
    """SQLite-backed store of task/transfer history.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (default) for an in-memory
        store scoped to this process.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path or ":memory:"
        self._conn = sqlite3.connect(self.path)
        self._create_tables()

    def _create_tables(self) -> None:
        cur = self._conn.cursor()
        cur.execute(
            """
            CREATE TABLE IF NOT EXISTS task_records (
                function_name TEXT NOT NULL,
                endpoint TEXT NOT NULL,
                input_mb REAL NOT NULL,
                output_mb REAL NOT NULL,
                execution_time_s REAL NOT NULL,
                cores_per_node INTEGER NOT NULL,
                cpu_freq_ghz REAL NOT NULL,
                ram_gb REAL NOT NULL,
                success INTEGER NOT NULL,
                timestamp REAL NOT NULL
            )
            """
        )
        cur.execute(
            """
            CREATE TABLE IF NOT EXISTS transfer_records (
                src TEXT NOT NULL,
                dst TEXT NOT NULL,
                size_mb REAL NOT NULL,
                duration_s REAL NOT NULL,
                mechanism TEXT NOT NULL,
                concurrency INTEGER NOT NULL,
                success INTEGER NOT NULL,
                timestamp REAL NOT NULL
            )
            """
        )
        cur.execute(
            "CREATE INDEX IF NOT EXISTS idx_task_function ON task_records(function_name)"
        )
        cur.execute("CREATE INDEX IF NOT EXISTS idx_transfer_pair ON transfer_records(src, dst)")
        self._conn.commit()

    # ----------------------------------------------------------------- tasks
    def add_task_record(self, record: TaskRecord) -> None:
        self._conn.execute(
            "INSERT INTO task_records VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.function_name,
                record.endpoint,
                record.input_mb,
                record.output_mb,
                record.execution_time_s,
                record.cores_per_node,
                record.cpu_freq_ghz,
                record.ram_gb,
                int(record.success),
                record.timestamp,
            ),
        )
        self._conn.commit()

    def task_records(
        self,
        function_name: Optional[str] = None,
        endpoint: Optional[str] = None,
        successful_only: bool = True,
        limit: Optional[int] = None,
    ) -> List[TaskRecord]:
        query = "SELECT * FROM task_records"
        clauses, params = [], []
        if function_name is not None:
            clauses.append("function_name = ?")
            params.append(function_name)
        if endpoint is not None:
            clauses.append("endpoint = ?")
            params.append(endpoint)
        if successful_only:
            clauses.append("success = 1")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY timestamp DESC"
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        rows = self._conn.execute(query, params).fetchall()
        return [
            TaskRecord(
                function_name=r[0],
                endpoint=r[1],
                input_mb=r[2],
                output_mb=r[3],
                execution_time_s=r[4],
                cores_per_node=r[5],
                cpu_freq_ghz=r[6],
                ram_gb=r[7],
                success=bool(r[8]),
                timestamp=r[9],
            )
            for r in rows
        ]

    def task_count(self, function_name: Optional[str] = None) -> int:
        if function_name is None:
            row = self._conn.execute("SELECT COUNT(*) FROM task_records").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM task_records WHERE function_name = ?", (function_name,)
            ).fetchone()
        return int(row[0])

    def function_names(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT function_name FROM task_records ORDER BY function_name"
        ).fetchall()
        return [r[0] for r in rows]

    # -------------------------------------------------------------- transfers
    def add_transfer_record(self, record: TransferRecord) -> None:
        self._conn.execute(
            "INSERT INTO transfer_records VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.src,
                record.dst,
                record.size_mb,
                record.duration_s,
                record.mechanism,
                record.concurrency,
                int(record.success),
                record.timestamp,
            ),
        )
        self._conn.commit()

    def transfer_records(
        self,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        successful_only: bool = True,
        limit: Optional[int] = None,
    ) -> List[TransferRecord]:
        query = "SELECT * FROM transfer_records"
        clauses, params = [], []
        if src is not None:
            clauses.append("src = ?")
            params.append(src)
        if dst is not None:
            clauses.append("dst = ?")
            params.append(dst)
        if successful_only:
            clauses.append("success = 1")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY timestamp DESC"
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        rows = self._conn.execute(query, params).fetchall()
        return [
            TransferRecord(
                src=r[0],
                dst=r[1],
                size_mb=r[2],
                duration_s=r[3],
                mechanism=r[4],
                concurrency=r[5],
                success=bool(r[6]),
                timestamp=r[7],
            )
            for r in rows
        ]

    def transfer_count(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM transfer_records").fetchone()
        return int(row[0])

    def endpoint_pairs(self) -> List[Tuple[str, str]]:
        rows = self._conn.execute(
            "SELECT DISTINCT src, dst FROM transfer_records ORDER BY src, dst"
        ).fetchall()
        return [(r[0], r[1]) for r in rows]

    # ----------------------------------------------------------------- misc
    def clear(self) -> None:
        self._conn.execute("DELETE FROM task_records")
        self._conn.execute("DELETE FROM transfer_records")
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()


class NullHistoryStore(HistoryStore):
    """A history store that records nothing.

    Open-ended streaming runs (10k+ tenants, ~1M tasks) would otherwise grow
    the in-memory SQLite store by one row per observation forever; the
    monitors keep their interface but every write is a no-op and every read
    returns empty.  Profilers see zero counts and fall back to live-only
    training, exactly as with no store at all.
    """

    def __init__(self) -> None:
        self.path = ":memory:"
        self._conn = None  # never opened; every accessor below is overridden

    def add_task_record(self, record: TaskRecord) -> None:
        pass

    def add_transfer_record(self, record: TransferRecord) -> None:
        pass

    def task_records(self, *args, **kwargs) -> List[TaskRecord]:
        return []

    def transfer_records(self, *args, **kwargs) -> List[TransferRecord]:
        return []

    def task_count(self, function_name: Optional[str] = None) -> int:
        return 0

    def transfer_count(self) -> int:
        return 0

    def function_names(self) -> List[str]:
        return []

    def endpoint_pairs(self) -> List[Tuple[str, str]]:
        return []

    def clear(self) -> None:
        pass

    def close(self) -> None:
        pass
