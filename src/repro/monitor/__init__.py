"""Monitoring layer (§IV-B).

The *task monitor* streams task execution records into a local history store
and to the profilers; the *endpoint monitor* keeps a locally mocked, real-time
view of every endpoint because the service's own status is only refreshed
periodically.
"""

from repro.monitor.store import HistoryStore, TaskRecord, TransferRecord
from repro.monitor.task_monitor import TaskMonitor
from repro.monitor.endpoint_monitor import EndpointMonitor, MockEndpoint

__all__ = [
    "EndpointMonitor",
    "HistoryStore",
    "MockEndpoint",
    "TaskMonitor",
    "TaskRecord",
    "TransferRecord",
]
