"""Task monitor (§IV-B).

Tracks task execution information — state transitions, completion times,
input/output sizes and which endpoint ran the task — and streams it into the
local history store and to any registered listeners (the profilers).  It also
maintains the per-endpoint success-rate statistics used by the fault
tolerance layer when reassigning repeatedly failing tasks (§IV-G).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro.faas.types import TaskExecutionRecord
from repro.monitor.store import HistoryStore, TaskRecord, TransferRecord
from repro.data.transfer import TransferResult

__all__ = ["TaskMonitor"]

RecordListener = Callable[[TaskExecutionRecord], None]
TransferListener = Callable[[TransferResult], None]


class TaskMonitor:
    """Collects execution and transfer observations."""

    def __init__(self, store: Optional[HistoryStore] = None) -> None:
        self.store = store or HistoryStore()
        self._task_listeners: List[RecordListener] = []
        self._transfer_listeners: List[TransferListener] = []
        self._success_by_endpoint: Dict[str, int] = defaultdict(int)
        self._failure_by_endpoint: Dict[str, int] = defaultdict(int)
        self._exec_time_sum: Dict[str, float] = defaultdict(float)
        self._exec_time_count: Dict[str, int] = defaultdict(int)
        self.records_seen = 0

    # ------------------------------------------------------------- listeners
    def add_task_listener(self, listener: RecordListener) -> None:
        self._task_listeners.append(listener)

    def add_transfer_listener(self, listener: TransferListener) -> None:
        self._transfer_listeners.append(listener)

    # ------------------------------------------------------------ observation
    def observe_task(self, record: TaskExecutionRecord) -> None:
        """Ingest one task execution record."""
        self.records_seen += 1
        if record.success:
            self._success_by_endpoint[record.endpoint] += 1
            key = record.function_name
            self._exec_time_sum[key] += record.execution_time_s
            self._exec_time_count[key] += 1
        else:
            self._failure_by_endpoint[record.endpoint] += 1

        self.store.add_task_record(
            TaskRecord(
                function_name=record.function_name,
                endpoint=record.endpoint,
                input_mb=record.input_mb,
                output_mb=record.output_mb,
                execution_time_s=record.execution_time_s,
                cores_per_node=record.cores_per_node,
                cpu_freq_ghz=record.cpu_freq_ghz,
                ram_gb=record.ram_gb,
                success=record.success,
                timestamp=record.completed_at,
            )
        )
        for listener in self._task_listeners:
            listener(record)

    def observe_transfer(self, result: TransferResult, concurrency: int = 1) -> None:
        """Ingest one transfer result."""
        self.store.add_transfer_record(
            TransferRecord(
                src=result.request.src,
                dst=result.request.dst,
                size_mb=result.request.size_mb,
                duration_s=result.duration_s,
                mechanism=result.request.mechanism,
                concurrency=concurrency,
                success=result.success,
                timestamp=result.completed_at,
            )
        )
        for listener in self._transfer_listeners:
            listener(result)

    # -------------------------------------------------------------- summaries
    def success_rate(self, endpoint: str) -> float:
        """Fraction of tasks that succeeded on ``endpoint`` (1.0 if unseen)."""
        successes = self._success_by_endpoint.get(endpoint, 0)
        failures = self._failure_by_endpoint.get(endpoint, 0)
        total = successes + failures
        if total == 0:
            return 1.0
        return successes / total

    def most_reliable_endpoint(self, candidates: List[str]) -> str:
        """Endpoint with the highest observed success rate (§IV-G)."""
        if not candidates:
            raise ValueError("candidates must be non-empty")
        return max(candidates, key=lambda ep: (self.success_rate(ep), ep))

    def mean_execution_time(self, function_name: str) -> Optional[float]:
        """Mean observed execution time of a function (None if unseen)."""
        count = self._exec_time_count.get(function_name, 0)
        if count == 0:
            return None
        return self._exec_time_sum[function_name] / count

    def completed_task_count(self) -> int:
        return sum(self._success_by_endpoint.values())

    def failed_task_count(self) -> int:
        return sum(self._failure_by_endpoint.values())
