"""Multi-endpoint scaling strategies (§IV-H).

Each funcX endpoint can already scale itself, but it only sees its own queue.
UniFaaS, with a global view of the workflow, can scale multiple endpoints in
advance.  The default strategy follows the paper: *scale out aggressively,
scale in conservatively* — if the workflow has more pending tasks than there
are workers in the pool, every endpoint is asked to scale out; scale-in is
left to the endpoints' own idle timeouts (releasing idle workers is easy,
acquiring workers on a busy batch system is not).

Users plug in their own policy by implementing :class:`ScalingStrategy` and
passing it to the client (the ``Scaling`` interface of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = ["ScalingDecision", "ScalingStrategy", "DefaultScalingStrategy", "NoScalingStrategy"]


@dataclass(frozen=True)
class ScalingDecision:
    """Workers to request per endpoint (only scale-out; scale-in is local)."""

    workers_to_request: Mapping[str, int]

    def total(self) -> int:
        return sum(self.workers_to_request.values())

    @classmethod
    def none(cls) -> "ScalingDecision":
        return cls(workers_to_request={})


@dataclass(frozen=True)
class EndpointView:
    """What a scaling strategy may know about one endpoint."""

    name: str
    active_workers: int
    idle_workers: int
    outstanding_tasks: int
    max_workers: int


class ScalingStrategy(ABC):
    """Policy deciding how many extra workers each endpoint should request."""

    @abstractmethod
    def decide(
        self,
        pending_tasks: int,
        endpoints: Mapping[str, EndpointView],
    ) -> ScalingDecision:
        """Return the scale-out request given the current workflow pressure."""


class NoScalingStrategy(ScalingStrategy):
    """Never request workers (static-capacity experiments)."""

    def decide(self, pending_tasks: int, endpoints: Mapping[str, EndpointView]) -> ScalingDecision:
        return ScalingDecision.none()


class DefaultScalingStrategy(ScalingStrategy):
    """The paper's default: aggressive scale-out, conservative scale-in.

    When the number of pending tasks exceeds the total number of workers,
    every endpoint is asked to scale out toward its cap, proportionally to
    how much of the shortfall it can absorb.
    """

    def __init__(self, caps: Optional[Mapping[str, int]] = None) -> None:
        #: Optional per-endpoint cap overriding the endpoint's own maximum
        #: (the ``max_workers`` field of :class:`~repro.core.config.ExecutorSpec`).
        self.caps = dict(caps or {})

    def decide(
        self,
        pending_tasks: int,
        endpoints: Mapping[str, EndpointView],
    ) -> ScalingDecision:
        total_workers = sum(view.active_workers for view in endpoints.values())
        if pending_tasks <= total_workers:
            return ScalingDecision.none()

        shortfall = pending_tasks - total_workers
        requests: Dict[str, int] = {}
        headrooms: Dict[str, int] = {}
        for name, view in endpoints.items():
            cap = self.caps.get(name, view.max_workers)
            headrooms[name] = max(0, min(cap, view.max_workers) - view.active_workers)
        total_headroom = sum(headrooms.values())
        if total_headroom == 0:
            return ScalingDecision.none()

        for name, headroom in headrooms.items():
            if headroom <= 0:
                continue
            # Scale out aggressively: ask for the whole shortfall, bounded by
            # what this endpoint may still grow by.
            requests[name] = min(headroom, shortfall)
        return ScalingDecision(workers_to_request=requests)
