"""Multi-endpoint scaling strategies (§IV-H).

Each funcX endpoint can already scale itself, but it only sees its own queue.
UniFaaS, with a global view of the workflow, can scale multiple endpoints in
advance.  The default strategy follows the paper: *scale out aggressively,
scale in conservatively* — if the workflow has more pending tasks than there
are workers in the pool, every endpoint is asked to scale out; scale-in is
left to the endpoints' own idle timeouts (releasing idle workers is easy,
acquiring workers on a busy batch system is not).

Users plug in their own policy by implementing :class:`ScalingStrategy` and
passing it to the client (the ``Scaling`` interface of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.rounding import largest_remainder_split

__all__ = [
    "ScalingDecision",
    "ScalingStrategy",
    "DefaultScalingStrategy",
    "NoScalingStrategy",
    "largest_remainder_split",
]


@dataclass(frozen=True)
class ScalingDecision:
    """Workers to request per endpoint (only scale-out; scale-in is local)."""

    workers_to_request: Mapping[str, int]

    def total(self) -> int:
        return sum(self.workers_to_request.values())

    @classmethod
    def none(cls) -> "ScalingDecision":
        return cls(workers_to_request={})


@dataclass(frozen=True)
class EndpointView:
    """What a scaling strategy may know about one endpoint."""

    name: str
    active_workers: int
    idle_workers: int
    outstanding_tasks: int
    max_workers: int


class ScalingStrategy(ABC):
    """Policy deciding how many extra workers each endpoint should request."""

    @abstractmethod
    def decide(
        self,
        pending_tasks: int,
        endpoints: Mapping[str, EndpointView],
    ) -> ScalingDecision:
        """Return the scale-out request given the current workflow pressure."""


class NoScalingStrategy(ScalingStrategy):
    """Never request workers (static-capacity experiments)."""

    def decide(self, pending_tasks: int, endpoints: Mapping[str, EndpointView]) -> ScalingDecision:
        return ScalingDecision.none()


class DefaultScalingStrategy(ScalingStrategy):
    """The paper's default: aggressive scale-out, conservative scale-in.

    When the number of pending tasks exceeds the total number of workers,
    every endpoint is asked to scale out toward its cap, proportionally to
    how much of the shortfall it can absorb.
    """

    def __init__(self, caps: Optional[Mapping[str, int]] = None) -> None:
        #: Optional per-endpoint cap overriding the endpoint's own maximum
        #: (the ``max_workers`` field of :class:`~repro.core.config.ExecutorSpec`).
        #: An entry here replaces the endpoint's advertised maximum entirely —
        #: it may lower *or* raise the growth target.
        self.caps = dict(caps or {})
        #: Zero-arg callable returning the current placement plan (or None).
        #: Wired by the engine when the placement service is enabled; the
        #: plan's per-endpoint worker targets then anchor the shortfall
        #: split instead of raw headroom.
        self.plan_provider = None

    def decide(
        self,
        pending_tasks: int,
        endpoints: Mapping[str, EndpointView],
    ) -> ScalingDecision:
        total_workers = sum(view.active_workers for view in endpoints.values())
        if pending_tasks <= total_workers:
            return ScalingDecision.none()

        shortfall = pending_tasks - total_workers
        headrooms: Dict[str, int] = {}
        for name, view in endpoints.items():
            cap = self.caps.get(name, view.max_workers)
            headrooms[name] = max(0, cap - view.active_workers)
        if sum(headrooms.values()) == 0:
            return ScalingDecision.none()

        # With a placement plan live, anchor the split on each endpoint's
        # *deficit* against its plan worker target: growth goes first where
        # the global optimizer wants capacity, still clipped to real
        # headroom.  Falls back to the raw-headroom split when the plan has
        # no targets or every target is already met.
        weights = self._plan_deficits(endpoints, headrooms) or headrooms

        # Split the shortfall proportionally to how much of it each endpoint
        # can absorb, with deterministic largest-remainder rounding, so the
        # total requested equals the shortfall (or the total headroom when
        # the shortfall exceeds it) instead of N × shortfall.
        split = largest_remainder_split(shortfall, weights, caps=headrooms)
        requests = {name: count for name, count in split.items() if count > 0}
        return ScalingDecision(workers_to_request=requests)

    def _plan_deficits(
        self,
        endpoints: Mapping[str, EndpointView],
        headrooms: Mapping[str, int],
    ) -> Optional[Dict[str, int]]:
        provider = self.plan_provider
        plan = provider() if provider is not None else None
        if plan is None or not plan.worker_targets:
            return None
        deficits: Dict[str, int] = {}
        for name, view in endpoints.items():
            target = int(plan.worker_targets.get(name, 0))
            deficit = max(0, target - view.active_workers)
            deficits[name] = min(deficit, headrooms.get(name, 0))
        if sum(deficits.values()) == 0:
            return None
        return deficits
