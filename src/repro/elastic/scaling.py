"""Multi-endpoint scaling strategies (§IV-H).

Each funcX endpoint can already scale itself, but it only sees its own queue.
UniFaaS, with a global view of the workflow, can scale multiple endpoints in
advance.  The default strategy follows the paper: *scale out aggressively,
scale in conservatively* — if the workflow has more pending tasks than there
are workers in the pool, every endpoint is asked to scale out; scale-in is
left to the endpoints' own idle timeouts (releasing idle workers is easy,
acquiring workers on a busy batch system is not).

Users plug in their own policy by implementing :class:`ScalingStrategy` and
passing it to the client (the ``Scaling`` interface of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = [
    "ScalingDecision",
    "ScalingStrategy",
    "DefaultScalingStrategy",
    "NoScalingStrategy",
    "largest_remainder_split",
]


def largest_remainder_split(
    total: int,
    weights: Mapping[str, float],
    caps: Optional[Mapping[str, int]] = None,
    tiebreak: Optional[Mapping[str, float]] = None,
) -> Dict[str, int]:
    """Split ``total`` units proportionally to ``weights``, deterministically.

    Integer apportionment by the largest-remainder (Hamilton) method: each
    key gets the floor of its exact proportional quota, and the leftover
    units go to the largest fractional remainders.  Ties — and therefore the
    whole allocation — resolve deterministically: by ``tiebreak`` value
    (ascending) when given, then by key.  ``caps`` bounds each key's
    allocation; capped leftovers spill to the remaining keys.  Keys with
    non-positive weight (or cap) always get zero.  Used by the elastic
    scaler's shortfall split and the serving layer's fair-share arbitration.
    """
    out = {key: 0 for key in weights}
    eligible = {
        key: w
        for key, w in weights.items()
        if w > 0 and (caps is None or caps.get(key, 0) > 0)
    }
    if total <= 0 or not eligible:
        return out
    if caps is not None:
        total = min(total, sum(caps[key] for key in eligible))
    weight_sum = sum(eligible.values())
    quotas = {key: total * w / weight_sum for key, w in eligible.items()}
    for key in eligible:
        floor = int(quotas[key])
        out[key] = floor if caps is None else min(floor, caps[key])
    leftover = total - sum(out.values())
    order = sorted(
        eligible,
        key=lambda key: (
            -(quotas[key] - int(quotas[key])),
            tiebreak.get(key, 0.0) if tiebreak is not None else 0.0,
            key,
        ),
    )
    while leftover > 0 and order:
        for key in list(order):
            if leftover <= 0:
                break
            if caps is not None and out[key] >= caps[key]:
                order.remove(key)
                continue
            out[key] += 1
            leftover -= 1
    return out


@dataclass(frozen=True)
class ScalingDecision:
    """Workers to request per endpoint (only scale-out; scale-in is local)."""

    workers_to_request: Mapping[str, int]

    def total(self) -> int:
        return sum(self.workers_to_request.values())

    @classmethod
    def none(cls) -> "ScalingDecision":
        return cls(workers_to_request={})


@dataclass(frozen=True)
class EndpointView:
    """What a scaling strategy may know about one endpoint."""

    name: str
    active_workers: int
    idle_workers: int
    outstanding_tasks: int
    max_workers: int


class ScalingStrategy(ABC):
    """Policy deciding how many extra workers each endpoint should request."""

    @abstractmethod
    def decide(
        self,
        pending_tasks: int,
        endpoints: Mapping[str, EndpointView],
    ) -> ScalingDecision:
        """Return the scale-out request given the current workflow pressure."""


class NoScalingStrategy(ScalingStrategy):
    """Never request workers (static-capacity experiments)."""

    def decide(self, pending_tasks: int, endpoints: Mapping[str, EndpointView]) -> ScalingDecision:
        return ScalingDecision.none()


class DefaultScalingStrategy(ScalingStrategy):
    """The paper's default: aggressive scale-out, conservative scale-in.

    When the number of pending tasks exceeds the total number of workers,
    every endpoint is asked to scale out toward its cap, proportionally to
    how much of the shortfall it can absorb.
    """

    def __init__(self, caps: Optional[Mapping[str, int]] = None) -> None:
        #: Optional per-endpoint cap overriding the endpoint's own maximum
        #: (the ``max_workers`` field of :class:`~repro.core.config.ExecutorSpec`).
        #: An entry here replaces the endpoint's advertised maximum entirely —
        #: it may lower *or* raise the growth target.
        self.caps = dict(caps or {})

    def decide(
        self,
        pending_tasks: int,
        endpoints: Mapping[str, EndpointView],
    ) -> ScalingDecision:
        total_workers = sum(view.active_workers for view in endpoints.values())
        if pending_tasks <= total_workers:
            return ScalingDecision.none()

        shortfall = pending_tasks - total_workers
        headrooms: Dict[str, int] = {}
        for name, view in endpoints.items():
            cap = self.caps.get(name, view.max_workers)
            headrooms[name] = max(0, cap - view.active_workers)
        if sum(headrooms.values()) == 0:
            return ScalingDecision.none()

        # Split the shortfall proportionally to how much of it each endpoint
        # can absorb (its headroom), with deterministic largest-remainder
        # rounding, so the total requested equals the shortfall (or the total
        # headroom when the shortfall exceeds it) instead of N × shortfall.
        split = largest_remainder_split(shortfall, headrooms, caps=headrooms)
        requests = {name: count for name, count in split.items() if count > 0}
        return ScalingDecision(workers_to_request=requests)
