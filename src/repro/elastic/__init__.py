"""Multi-endpoint elasticity (§IV-H)."""

from repro.elastic.scaling import (
    DefaultScalingStrategy,
    NoScalingStrategy,
    ScalingDecision,
    ScalingStrategy,
)

__all__ = [
    "DefaultScalingStrategy",
    "NoScalingStrategy",
    "ScalingDecision",
    "ScalingStrategy",
]
