"""Wide-area data management (§IV-E).

UniFaaS passes small Python objects between tasks through futures, but large
files must be staged across the federated resource pool.  This package
provides:

* :mod:`repro.data.remote_file` — the ``RemoteFile`` shim layer
  (``GlobusFile``/``RsyncFile``/``RemoteDirectory``) users wrap their data in;
* :mod:`repro.data.transfer` — transfer backends (simulated Globus and rsync
  over the network model, and a local-copy backend for local mode);
* :mod:`repro.data.manager` — the data manager: per-endpoint-pair staging
  queues with bounded concurrency, transparent retries and a replica catalog.
"""

from repro.data.remote_file import GlobusFile, RemoteDirectory, RemoteFile, RsyncFile
from repro.data.transfer import (
    LocalCopyTransferBackend,
    SimulatedTransferBackend,
    TransferBackend,
    TransferRequest,
    TransferResult,
)
from repro.data.manager import DataManager, StagingTicket

__all__ = [
    "DataManager",
    "GlobusFile",
    "LocalCopyTransferBackend",
    "RemoteDirectory",
    "RemoteFile",
    "RsyncFile",
    "SimulatedTransferBackend",
    "StagingTicket",
    "TransferBackend",
    "TransferRequest",
    "TransferResult",
]
