"""RemoteFile shim layer (§III-A, §IV-E).

A :class:`RemoteFile` wraps data that lives on some endpoint's filesystem and
is too large to travel inline with a task (funcX caps serialized arguments at
10 MB).  Tasks receive RemoteFile arguments, call
:meth:`RemoteFile.get_remote_file_path` and use ordinary Python I/O; the data
manager makes sure the file is present on the endpoint the task runs on
before the task is dispatched.

Two concrete subclasses select the transfer mechanism: :class:`GlobusFile`
and :class:`RsyncFile`.  :class:`RemoteDirectory` groups several files that
move together.

In simulation mode files are *virtual*: they carry a size and a set of
replica locations but no bytes.  In local mode they may point at a real path
on the local filesystem.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Set

__all__ = [
    "RemoteFile",
    "GlobusFile",
    "RsyncFile",
    "RemoteDirectory",
    "bump_location_version",
    "location_version",
]

_file_counter = itertools.count()

#: Global generation counter over every file's replica set.  Consumers that
#: cache location-dependent values (the array-backed scheduling context's
#: staging-time matrix) stamp their entries with it instead of tracking each
#: file individually — replica changes are rare relative to predictions read.
_location_version = 0


def location_version() -> int:
    """Current replica-set generation (bumped on any location change)."""
    return _location_version


def _bump_location_version() -> None:
    global _location_version
    _location_version += 1


def bump_location_version() -> None:
    """Advance the replica-set generation without a location change.

    Used when replica *reachability* changes (an endpoint crashing or
    rejoining quarantines / restores its copies): the catalog is unchanged
    but every location-stamped prediction cache must invalidate.
    """
    _bump_location_version()


class RemoteFile:
    """A file that lives on one or more endpoints of the federated pool."""

    #: Transfer mechanism used to move this file ("globus", "rsync", "local").
    mechanism = "globus"

    def __init__(
        self,
        name: str,
        size_mb: float = 0.0,
        location: Optional[str] = None,
        local_path: Optional[str] = None,
    ) -> None:
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        self.file_id = f"file-{next(_file_counter):08d}"
        self.name = name
        self.size_mb = float(size_mb)
        #: Endpoints currently holding a replica of this file.
        self.locations: Set[str] = set()
        if location is not None:
            self.locations.add(location)
            _bump_location_version()
        self.local_path = local_path

    # ------------------------------------------------------------- interface
    @classmethod
    def create(
        cls,
        name: str,
        size_mb: float = 0.0,
        location: Optional[str] = None,
        local_path: Optional[str] = None,
    ) -> "RemoteFile":
        """Create a new (initially empty) file on a compute resource.

        Mirrors ``GlobusFile.create`` in Listing 1: functions call this to
        declare output files that UniFaaS should track and stage.
        """
        return cls(name, size_mb=size_mb, location=location, local_path=local_path)

    def get_remote_file_path(self) -> str:
        """Path a task should use to read/write the file on its endpoint."""
        if self.local_path is not None:
            return self.local_path
        location = self.primary_location or "unplaced"
        return f"/unifaas/data/{location}/{self.name}"

    # -------------------------------------------------------------- replicas
    @property
    def primary_location(self) -> Optional[str]:
        """One endpoint holding the file (stable choice), or ``None``."""
        if not self.locations:
            return None
        return sorted(self.locations)[0]

    def available_at(self, endpoint: str) -> bool:
        return endpoint in self.locations

    def add_location(self, endpoint: str) -> None:
        if endpoint not in self.locations:
            self.locations.add(endpoint)
            _bump_location_version()

    def remove_location(self, endpoint: str) -> None:
        if endpoint in self.locations:
            self.locations.discard(endpoint)
            _bump_location_version()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, size_mb={self.size_mb}, "
            f"locations={sorted(self.locations)})"
        )


class GlobusFile(RemoteFile):
    """File transferred with Globus (high-throughput, managed transfers)."""

    mechanism = "globus"


class RsyncFile(RemoteFile):
    """File transferred with rsync over ssh (single-stream)."""

    mechanism = "rsync"


class RemoteDirectory:
    """A group of remote files that are staged together."""

    def __init__(self, name: str, files: Optional[Iterable[RemoteFile]] = None) -> None:
        self.name = name
        self.files: List[RemoteFile] = list(files or [])

    @property
    def size_mb(self) -> float:
        return float(sum(f.size_mb for f in self.files))

    def add(self, file: RemoteFile) -> None:
        self.files.append(file)

    def available_at(self, endpoint: str) -> bool:
        return all(f.available_at(endpoint) for f in self.files)

    def get_remote_file_path(self) -> str:
        """Directory path on the endpoint (keeps RemoteFile duck-typing)."""
        location = sorted({f.primary_location for f in self.files if f.primary_location})
        prefix = location[0] if location else "unplaced"
        return f"/unifaas/data/{prefix}/{self.name}/"

    def __iter__(self):
        return iter(self.files)

    def __len__(self) -> int:
        return len(self.files)
