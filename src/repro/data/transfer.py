"""Transfer mechanisms used by the data manager (§IV-E).

The data manager is mechanism-agnostic: it hands :class:`TransferRequest`
objects to a :class:`TransferBackend` and receives completion callbacks.  Two
backends are provided:

* :class:`SimulatedTransferBackend` — models Globus/rsync transfers over the
  wide-area :class:`~repro.sim.network.NetworkModel`; durations depend on
  size, link bandwidth, mechanism efficiency and concurrent transfers, and
  transfers can fail with the link's failure rate.
* :class:`LocalCopyTransferBackend` — used in local mode, where all
  "endpoints" share the local filesystem; transfers complete immediately
  (optionally copying real files).
"""

from __future__ import annotations

import itertools
import shutil
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

from repro.data.remote_file import RemoteFile
from repro.sim.kernel import SimulationKernel
from repro.sim.network import NetworkModel

__all__ = [
    "TransferBackend",
    "TransferRequest",
    "TransferResult",
    "SimulatedTransferBackend",
    "LocalCopyTransferBackend",
]

_transfer_counter = itertools.count()


@dataclass
class TransferRequest:
    """One file movement between two endpoints."""

    file: RemoteFile
    src: str
    dst: str
    mechanism: str = "globus"
    transfer_id: str = ""

    def __post_init__(self) -> None:
        if not self.transfer_id:
            self.transfer_id = f"xfer-{next(_transfer_counter):08d}"
        if self.src == self.dst:
            raise ValueError("transfer source and destination are identical")

    @property
    def size_mb(self) -> float:
        return self.file.size_mb


@dataclass
class TransferResult:
    """Outcome of one transfer attempt."""

    request: TransferRequest
    success: bool
    started_at: float
    completed_at: float
    error: Optional[str] = None

    @property
    def duration_s(self) -> float:
        return self.completed_at - self.started_at


TransferCallback = Callable[[TransferResult], None]


class TransferBackend(ABC):
    """Mechanism capable of executing transfers asynchronously."""

    @abstractmethod
    def start(self, request: TransferRequest, on_done: TransferCallback) -> None:
        """Begin a transfer; ``on_done`` is invoked exactly once when it ends."""

    def estimate_duration(self, src: str, dst: str, size_mb: float, mechanism: str = "globus") -> float:
        """Best-effort duration estimate (0.0 when unknown/free)."""
        return 0.0


class SimulatedTransferBackend(TransferBackend):
    """Transfers executed on the discrete-event network model."""

    def __init__(self, kernel: SimulationKernel, network: NetworkModel) -> None:
        self.kernel = kernel
        self.network = network
        #: Counters exposed for metrics/tests.
        self.started_count = 0
        self.failed_count = 0
        self.completed_count = 0

    def start(self, request: TransferRequest, on_done: TransferCallback) -> None:
        started_at = self.kernel.now()
        self.started_count += 1
        self.network.register_transfer_start(request.src, request.dst)
        failed = self.network.sample_failure(request.src, request.dst)
        duration = self.network.sample_duration(
            request.src, request.dst, request.size_mb, mechanism=request.mechanism
        )
        if failed:
            # A failed attempt still occupies the link for part of the nominal
            # duration before the error is detected.
            duration *= 0.5

        def finish() -> None:
            self.network.register_transfer_end(request.src, request.dst)
            if failed:
                self.failed_count += 1
            else:
                self.completed_count += 1
                request.file.add_location(request.dst)
            on_done(
                TransferResult(
                    request=request,
                    success=not failed,
                    started_at=started_at,
                    completed_at=self.kernel.now(),
                    error="simulated transfer failure" if failed else None,
                )
            )

        self.kernel.schedule(duration, finish, label=f"transfer-{request.mechanism}")

    def estimate_duration(self, src: str, dst: str, size_mb: float, mechanism: str = "globus") -> float:
        return self.network.estimate(src, dst, size_mb, mechanism=mechanism).duration_s


class LocalCopyTransferBackend(TransferBackend):
    """Immediate transfers for local mode (shared filesystem)."""

    def __init__(self, clock=None, copy_files: bool = False) -> None:
        self._clock = clock
        self.copy_files = copy_files
        self.completed_count = 0

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def start(self, request: TransferRequest, on_done: TransferCallback) -> None:
        now = self._now()
        error = None
        success = True
        if self.copy_files and request.file.local_path:
            try:
                destination = f"{request.file.local_path}.{request.dst}"
                shutil.copyfile(request.file.local_path, destination)
            except OSError as exc:
                success = False
                error = str(exc)
        if success:
            request.file.add_location(request.dst)
            self.completed_count += 1
        on_done(
            TransferResult(
                request=request,
                success=success,
                started_at=now,
                completed_at=self._now(),
                error=error,
            )
        )
