"""The data manager: transparent wide-area staging (§IV-E).

For every task the scheduler places on an endpoint, the data manager works
out which input files are missing there, queues the necessary transfers (per
endpoint-pair, with a bounded number of concurrent transfers), monitors their
progress, retries failures (§IV-G) and notifies the orchestration engine when
the task's staging is complete so it can be dispatched.

It also maintains the replica catalog the Locality scheduler queries ("how
many bytes would I have to move to run this task on endpoint X?") and the
aggregate transfer-volume counters reported in Tables IV and V.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.data.remote_file import RemoteFile
from repro.data.transfer import TransferBackend, TransferRequest, TransferResult
from repro.sim.kernel import Clock

__all__ = ["DataManager", "StagingTicket", "task_namespace"]

_ticket_counter = itertools.count()

StagedCallback = Callable[["StagingTicket"], None]


def task_namespace(task_id: str) -> str:
    """The workflow namespace of a task id ("" on the single-workflow path).

    The multi-workflow serving layer prefixes every tenant's task ids with
    ``<workflow>/``; the data layer attributes per-ticket transfer volume to
    that namespace so tenants' bytes can be accounted separately.
    """
    head, sep, _ = task_id.partition("/")
    return head if sep else ""


@dataclass
class StagingTicket:
    """Tracks the staging of one task's inputs onto its target endpoint."""

    task_id: str
    destination: str
    ticket_id: str = field(default_factory=lambda: f"stage-{next(_ticket_counter):08d}")
    pending_transfers: Set[str] = field(default_factory=set)
    failed: bool = False
    #: A newer placement of the same task replaced this ticket.  Superseded
    #: tickets never fire staged callbacks and accrue no transfer volume —
    #: the staging coordinator must not observe a "staged" event for a
    #: destination the task already left.
    superseded: bool = False
    created_at: float = 0.0
    completed_at: Optional[float] = None
    #: Data volume this ticket moved across endpoints (MB).
    transferred_mb: float = 0.0

    @property
    def done(self) -> bool:
        return not self.pending_transfers or self.failed

    @property
    def staging_time_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at


@dataclass
class _QueuedTransfer:
    request: TransferRequest
    #: Every ticket waiting on this transfer; several tasks headed to the same
    #: endpoint may need the same file and must not trigger duplicate copies.
    tickets: List[StagingTicket] = field(default_factory=list)
    attempts: int = 0


class DataManager:
    """Schedules, monitors and retries the transfers behind task staging."""

    def __init__(
        self,
        backend: TransferBackend,
        clock: Clock,
        *,
        mechanism: str = "globus",
        max_concurrent_transfers: int = 4,
        max_retries: int = 3,
    ) -> None:
        if max_concurrent_transfers <= 0:
            raise ValueError("max_concurrent_transfers must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.backend = backend
        self.clock = clock
        self.mechanism = mechanism
        self.max_concurrent_transfers = max_concurrent_transfers
        self.max_retries = max_retries

        self._queues: Dict[Tuple[str, str], Deque[_QueuedTransfer]] = defaultdict(deque)
        self._in_flight: Dict[Tuple[str, str], int] = defaultdict(int)
        #: Outstanding transfer per (file_id, destination): staging requests
        #: for a file that is already on its way simply join the wait list.
        self._active_file_transfers: Dict[Tuple[str, str], _QueuedTransfer] = {}
        self._tickets: Dict[str, StagingTicket] = {}
        self._tickets_by_task: Dict[str, StagingTicket] = {}
        #: Tickets grouped by workflow namespace, maintained incrementally so
        #: :meth:`release_namespace` (streaming-tenant retirement) never scans
        #: every ticket ever issued.
        self._tickets_by_namespace: Dict[str, List[StagingTicket]] = defaultdict(list)
        #: Tickets created but not yet done — kept as a counter so the
        #: metrics sampler's :meth:`active_staging_tasks` is O(1) instead of
        #: re-scanning every ticket ever issued.
        self._open_ticket_count = 0
        self._staged_callbacks: List[StagedCallback] = []
        self._transfer_callbacks: List[Callable[[TransferResult, int], None]] = []

        # Aggregate statistics (Tables IV/V and Fig. 10).
        self.total_transferred_mb = 0.0
        self.transfer_count = 0
        self.failed_transfer_count = 0
        self.retry_count = 0
        self.volume_by_pair_mb: Dict[Tuple[str, str], float] = defaultdict(float)
        #: Transfer volume attributed per workflow namespace (multi-tenant
        #: serving; the single-workflow path accumulates under "").
        self.volume_by_namespace_mb: Dict[str, float] = defaultdict(float)

    # -------------------------------------------------------------- callbacks
    def add_staged_callback(self, callback: StagedCallback) -> None:
        """Register a callback invoked when a ticket finishes (or fails)."""
        self._staged_callbacks.append(callback)

    def remove_staged_callback(self, callback: StagedCallback) -> None:
        """Unregister a staged callback (a retired tenant's staging coordinator).

        Without this, a long streaming run accumulates one dead callback per
        all-time tenant on the shared manager and every ticket notification
        fans out to all of them.
        """
        try:
            self._staged_callbacks.remove(callback)
        except ValueError:
            pass

    def add_transfer_callback(self, callback: Callable[[TransferResult, int], None]) -> None:
        """Register a callback invoked per transfer attempt result.

        The callback receives ``(result, concurrency)`` where concurrency is
        the number of transfers that were in flight on the same endpoint pair
        — the feature the transfer profiler trains on.
        """
        self._transfer_callbacks.append(callback)

    # ------------------------------------------------------------------ query
    def missing_files(self, files: Iterable[RemoteFile], endpoint: str) -> List[RemoteFile]:
        """Input files that are not yet present on ``endpoint``."""
        return [f for f in files if f.size_mb > 0 and not f.available_at(endpoint)]

    def bytes_to_move_mb(self, files: Iterable[RemoteFile], endpoint: str) -> float:
        """Data volume that running a task on ``endpoint`` would transfer.

        This is the quantity Locality minimises when it selects an endpoint
        (§IV-D, Fig. 3).
        """
        return float(sum(f.size_mb for f in self.missing_files(files, endpoint)))

    def active_staging_tasks(self) -> int:
        """Number of tasks currently waiting on data staging (Fig. 10)."""
        return self._open_ticket_count

    def ticket_for_task(self, task_id: str) -> Optional[StagingTicket]:
        return self._tickets_by_task.get(task_id)

    # --------------------------------------------------------------- staging
    def stage(
        self,
        task_id: str,
        files: Iterable[RemoteFile],
        destination: str,
        priority: float = 0.0,
    ) -> StagingTicket:
        """Ensure ``files`` are present on ``destination`` for ``task_id``.

        Returns a ticket that is already ``done`` when nothing needs to move.
        ``priority`` is accepted for interface parity with the data plane
        (:class:`~repro.dataplane.plane.DataPlane`); the FIFO path ignores it.
        """
        previous = self._tickets_by_task.get(task_id)
        if previous is not None and not previous.done:
            # The task was re-placed while its old ticket was still staging.
            # Mark the old ticket superseded so its in-flight transfers can
            # neither fire a stale "staged" callback for the abandoned
            # destination nor accrue volume (parity with the data plane's
            # supersede-and-cancel path; FIFO transfers are left to land —
            # another ticket may be waiting on the same copy).
            previous.superseded = True
            previous.completed_at = self.clock.now()
            self._open_ticket_count -= 1
        ticket = StagingTicket(
            task_id=task_id, destination=destination, created_at=self.clock.now()
        )
        self._tickets[ticket.ticket_id] = ticket
        self._tickets_by_task[task_id] = ticket
        self._tickets_by_namespace[task_namespace(task_id)].append(ticket)

        missing = self.missing_files(files, destination)
        if not missing:
            ticket.completed_at = self.clock.now()
            self._notify(ticket)
            return ticket

        self._open_ticket_count += 1
        for file in missing:
            dedup_key = (file.file_id, destination)
            existing = self._active_file_transfers.get(dedup_key)
            if existing is not None:
                # The file is already on its way to this endpoint for another
                # task; wait for that copy instead of transferring it again.
                ticket.pending_transfers.add(existing.request.transfer_id)
                existing.tickets.append(ticket)
                continue
            src = self._pick_source(file, destination)
            request = TransferRequest(
                file=file, src=src, dst=destination, mechanism=self.mechanism
            )
            ticket.pending_transfers.add(request.transfer_id)
            queued = _QueuedTransfer(request=request, tickets=[ticket])
            self._active_file_transfers[dedup_key] = queued
            pair = (src, destination)
            self._queues[pair].append(queued)
            self._pump_pair(pair)
        return ticket

    def register_output(self, file: RemoteFile, endpoint: str) -> None:
        """Record that ``file`` was produced on ``endpoint``."""
        file.add_location(endpoint)

    # ------------------------------------------------------------- retirement
    def release_namespace(self, namespace: str) -> int:
        """Drop a retired workflow's staging records; returns tickets released.

        Called by the serving layer when a streaming tenant retires: every
        ticket it ever opened (all terminal by then), its per-task indices and
        its attributed-volume entry are released so live memory stays
        O(active tenants), not O(all-time tasks).  The aggregate Table IV/V
        counters are untouched.
        """
        tickets = self._tickets_by_namespace.pop(namespace, [])
        for ticket in tickets:
            self._tickets.pop(ticket.ticket_id, None)
            if self._tickets_by_task.get(ticket.task_id) is ticket:
                del self._tickets_by_task[ticket.task_id]
            self._release_task_state(ticket.task_id)
        self.volume_by_namespace_mb.pop(namespace, None)
        return len(tickets)

    def _release_task_state(self, task_id: str) -> None:
        """Subclass hook: drop per-task state beyond the ticket indices."""

    # -------------------------------------------------------------- internal
    def _pick_source(
        self, file: RemoteFile, destination: str, exclude: Iterable[str] = ()
    ) -> str:
        """Choose the replica to copy from (cheapest estimated transfer).

        ``exclude`` drops replicas that just failed to serve (retry path);
        when every replica is excluded the full set is used as a last resort.
        """
        sources = sorted(file.locations)
        if not sources:
            raise ValueError(
                f"file {file.name!r} has no replica to stage to {destination!r} from"
            )
        excluded = set(exclude)
        if excluded:
            remaining = [s for s in sources if s not in excluded]
            sources = remaining or sources
        if len(sources) == 1:
            return sources[0]
        return min(
            sources,
            key=lambda src: self.backend.estimate_duration(
                src, destination, file.size_mb, mechanism=self.mechanism
            ),
        )

    def _pump_pair(self, pair: Tuple[str, str]) -> None:
        queue = self._queues[pair]
        while queue and self._in_flight[pair] < self.max_concurrent_transfers:
            queued = queue.popleft()
            self._in_flight[pair] += 1
            queued.attempts += 1
            self.transfer_count += 1
            self.backend.start(
                queued.request, lambda result, q=queued: self._on_transfer_done(q, result)
            )

    def _on_transfer_done(self, queued: _QueuedTransfer, result: TransferResult) -> None:
        pair = (queued.request.src, queued.request.dst)
        concurrency = max(1, self._in_flight[pair])
        self._in_flight[pair] -= 1
        dedup_key = (queued.request.file.file_id, queued.request.dst)
        for callback in self._transfer_callbacks:
            callback(result, concurrency)

        if result.success:
            self._active_file_transfers.pop(dedup_key, None)
            size = queued.request.size_mb
            self.total_transferred_mb += size
            self.volume_by_pair_mb[pair] += size
            # Attribute the moved volume to *live* tickets only: a ticket that
            # already failed terminally (a sibling transfer exhausted its
            # retries) or was superseded by a re-placement must not keep
            # accumulating volume, or per-ticket sums double-count against
            # the Table IV/V aggregates.
            live = [t for t in queued.tickets if not t.failed and not t.superseded]
            for ticket in live:
                share = size / len(live)
                ticket.transferred_mb += share
                self.volume_by_namespace_mb[task_namespace(ticket.task_id)] += share
            for ticket in queued.tickets:
                ticket.pending_transfers.discard(queued.request.transfer_id)
                if ticket.superseded:
                    continue  # a newer ticket owns this task's staging
                if ticket.done and ticket.completed_at is None:
                    ticket.completed_at = self.clock.now()
                    self._open_ticket_count -= 1
                    self._notify(ticket)
        else:
            self.failed_transfer_count += 1
            if queued.attempts <= self.max_retries:
                self.retry_count += 1
                # Re-pick the source before re-queueing (parity with the data
                # plane's ``_reroute_job``): under crash/brownout dynamics the
                # chosen replica's link may be dead while another replica is
                # perfectly reachable — retrying into the same dead (src, dst)
                # queue would burn every retry for nothing.
                retry_pair = self._requeue_for_retry(queued)
                if retry_pair != pair:
                    self._pump_pair(retry_pair)
            else:
                self._active_file_transfers.pop(dedup_key, None)
                for ticket in queued.tickets:
                    if ticket.failed or ticket.superseded:
                        continue
                    ticket.failed = True
                    ticket.pending_transfers.discard(queued.request.transfer_id)
                    ticket.completed_at = self.clock.now()
                    self._open_ticket_count -= 1
                    self._notify(ticket)

        self._pump_pair(pair)

    def _requeue_for_retry(self, queued: _QueuedTransfer) -> Tuple[str, str]:
        """Queue a failed transfer for another attempt, re-picking its source.

        Prefers a replica other than the one that just failed; waiting
        tickets' pending-transfer ids follow the rebuilt request.  Returns
        the (src, dst) pair the retry was queued on.
        """
        request = queued.request
        file = request.file
        if len(file.locations) > 1:
            new_src = self._pick_source(file, request.dst, exclude=(request.src,))
            if new_src != request.src:
                fresh = TransferRequest(
                    file=file, src=new_src, dst=request.dst, mechanism=self.mechanism
                )
                for ticket in queued.tickets:
                    ticket.pending_transfers.discard(request.transfer_id)
                    ticket.pending_transfers.add(fresh.transfer_id)
                queued.request = fresh
        retry_pair = (queued.request.src, queued.request.dst)
        self._queues[retry_pair].append(queued)
        return retry_pair

    def _notify(self, ticket: StagingTicket) -> None:
        for callback in self._staged_callbacks:
            callback(ticket)
