"""Entry point for ``python -m repro`` (the scenario runner CLI)."""

import sys

from repro.scenarios.cli import main

if __name__ == "__main__":
    sys.exit(main())
