"""Priority- and bandwidth-aware transfer scheduling — the data plane's queue.

Replaces the data manager's per-link FIFO deques with per-link *priority*
queues:

* **priority order** — demand transfers are ordered by the priority of the
  downstream task waiting on them (DHA's upward rank), so critical-path
  staging jumps the queue;
* **two service classes** — prefetch transfers ride a strictly lower class
  than demand transfers and are capped to a fraction of each link's
  concurrency slots, so speculation can never delay a task that is actually
  waiting;
* **cross-ticket coalescing** — one in-flight/queued transfer per
  ``(file, destination)`` pair fabric-wide; later requests (from any ticket,
  demand or prefetch) join the existing job instead of duplicating the copy,
  and a demand arrival *upgrades* a queued prefetch to demand class;
* **cancellation** — queued jobs can be cancelled (endpoint crashed, task
  re-placed elsewhere) before they ever occupy a link.

The scheduler owns queueing and in-flight accounting only; replica/ticket
semantics live in :class:`~repro.dataplane.plane.DataPlane`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.data.manager import StagingTicket
from repro.data.transfer import TransferBackend, TransferRequest, TransferResult

__all__ = ["TransferJob", "TransferScheduler", "DEMAND", "PREFETCH"]

#: Service classes: lower value = served first.
DEMAND = 0
PREFETCH = 1

Link = Tuple[str, str]


@dataclass
class TransferJob:
    """One scheduled file movement, possibly shared by many tickets."""

    request: TransferRequest
    #: Service class (``DEMAND`` or ``PREFETCH``).
    klass: int = DEMAND
    #: Downstream-task priority (higher = sooner within the class).
    priority: float = 0.0
    seq: int = 0
    tickets: List[StagingTicket] = field(default_factory=list)
    attempts: int = 0
    cancelled: bool = False
    started: bool = False
    #: True when the job entered the queue through the prefetch pipeline
    #: (kept even after a demand upgrade, for usefulness accounting).
    prefetch_origin: bool = False
    #: True once a demand ticket joined a prefetch-origin job (counted once).
    demand_joined: bool = False
    #: The priority the prefetch pipeline issued the job with — restored when
    #: a demand upgrade is superseded and the job falls back to speculation.
    prefetch_priority: float = 0.0
    #: Token of the job's single *live* heap entry.  Every (re-)push mints a
    #: new token, so stale lazy-deletion entries are recognised exactly even
    #: when a demote restores a key identical to an earlier entry's — and the
    #: token doubles as a unique heap tiebreaker, so heapq never has to
    #: compare two TransferJob payloads.
    queue_token: int = -1

    @property
    def link(self) -> Link:
        return (self.request.src, self.request.dst)

    def sort_key(self) -> Tuple:
        return (self.klass, -self.priority, self.seq)


class TransferScheduler:
    """Per-link priority queues with class-aware concurrency shaping."""

    def __init__(
        self,
        backend: TransferBackend,
        *,
        max_concurrent_per_link: int = 4,
        on_done: Optional[Callable[[TransferJob, TransferResult, int], None]] = None,
    ) -> None:
        if max_concurrent_per_link <= 0:
            raise ValueError("max_concurrent_per_link must be positive")
        self.backend = backend
        self.max_concurrent_per_link = max_concurrent_per_link
        #: Slots a prefetch-class job may occupy on a link: always leaves at
        #: least one slot free for demand work on multi-slot links.
        self.prefetch_slots_per_link = max(1, max_concurrent_per_link - 1)
        self._on_done = on_done
        self._seq = itertools.count()
        self._push_seq = itertools.count()
        self._queues: Dict[Link, List[Tuple[Tuple, int, TransferJob]]] = {}
        self._in_flight: Dict[Link, int] = {}
        self._in_flight_prefetch: Dict[Link, int] = {}
        #: Live queued (not started, not cancelled) jobs per link — kept as a
        #: counter because the heaps hold stale lazy-deletion entries.
        self._queued_count: Dict[Link, int] = {}
        #: The single live job per (file_id, destination) — the coalescing map.
        self._active: Dict[Tuple[str, str], TransferJob] = {}

        # Counters (attempts, like the legacy manager's ``transfer_count``).
        self.dispatched_attempts = 0
        self.cancelled_count = 0

    # ----------------------------------------------------------------- lookup
    def active_job(self, file_id: str, destination: str) -> Optional[TransferJob]:
        job = self._active.get((file_id, destination))
        if job is not None and job.cancelled:
            return None
        return job

    def in_flight(self, src: str, dst: str) -> int:
        return self._in_flight.get((src, dst), 0)

    def queued(self, src: str, dst: str) -> int:
        return self._queued_count.get((src, dst), 0)

    def link_pressure(self, src: str, dst: str) -> int:
        """Transfers already claiming the link (in flight + queued)."""
        return self.in_flight(src, dst) + self.queued(src, dst)

    def queued_jobs(self) -> List[TransferJob]:
        """Every queued (not yet started) live job, in deterministic order."""
        return [job for job in self.active_jobs() if not job.started]

    def active_jobs(self) -> List[TransferJob]:
        """Every live (queued or in-flight) job, in deterministic order."""
        return [
            job
            for key in sorted(self._active)
            if not (job := self._active[key]).cancelled
        ]

    # ----------------------------------------------------------------- submit
    def submit(self, job: TransferJob) -> None:
        """Queue ``job`` and pump its link."""
        job.seq = next(self._seq)
        key = (job.request.file.file_id, job.request.dst)
        self._active[key] = job
        self._queued_count[job.link] = self._queued_count.get(job.link, 0) + 1
        self._push(job)
        self.pump(job.link)

    def reprioritize(self, job: TransferJob, *, klass: int, priority: float) -> None:
        """Raise a queued job's service class / priority (no-op if started)."""
        if job.started or job.cancelled:
            return
        if (klass, -priority) >= (job.klass, -job.priority):
            return
        job.klass = klass
        job.priority = priority
        # Lazy-deletion re-push: the stale heap entry is skipped because its
        # token no longer matches the job's current queue_token.
        self._push(job)
        self.pump(job.link)

    def demote(self, job: TransferJob, *, klass: int, priority: float = 0.0) -> None:
        """Push a queued job back down (its demand tickets all departed)."""
        if job.started or job.cancelled:
            return
        job.klass = klass
        job.priority = priority
        self._push(job)
        self.pump(job.link)

    def cancel(self, job: TransferJob) -> bool:
        """Cancel a queued job (False when it already started)."""
        if job.started or job.cancelled:
            return False
        job.cancelled = True
        key = (job.request.file.file_id, job.request.dst)
        if self._active.get(key) is job:
            del self._active[key]
        self._queued_count[job.link] = max(0, self._queued_count.get(job.link, 0) - 1)
        self.cancelled_count += 1
        return True

    def requeue(self, job: TransferJob) -> None:
        """Put a failed job back in its queue for another attempt."""
        job.started = False
        self._queued_count[job.link] = self._queued_count.get(job.link, 0) + 1
        self._push(job)
        self.pump(job.link)

    def release(self, job: TransferJob) -> None:
        """Drop a finished job from the coalescing map."""
        key = (job.request.file.file_id, job.request.dst)
        if self._active.get(key) is job:
            del self._active[key]

    # ------------------------------------------------------------------- pump
    def pump(self, link: Link) -> None:
        queue = self._queues.get(link)
        if not queue:
            return
        while queue and self._in_flight.get(link, 0) < self.max_concurrent_per_link:
            _key, token, job = queue[0]
            if job.cancelled or job.started or token != job.queue_token:
                heapq.heappop(queue)  # stale or lazy-deleted entry
                continue
            if (
                job.klass == PREFETCH
                and self._in_flight_prefetch.get(link, 0) >= self.prefetch_slots_per_link
            ):
                break  # leave headroom for demand transfers on this link
            heapq.heappop(queue)
            self._dispatch(job)
        if not queue:
            self._queues.pop(link, None)

    def _push(self, job: TransferJob) -> None:
        job.queue_token = next(self._push_seq)
        heapq.heappush(
            self._queues.setdefault(job.link, []),
            (job.sort_key(), job.queue_token, job),
        )

    def _dispatch(self, job: TransferJob) -> None:
        link = job.link
        job.started = True
        job.attempts += 1
        self._queued_count[link] = max(0, self._queued_count.get(link, 0) - 1)
        self._in_flight[link] = self._in_flight.get(link, 0) + 1
        if job.klass == PREFETCH:
            self._in_flight_prefetch[link] = self._in_flight_prefetch.get(link, 0) + 1
        self.dispatched_attempts += 1
        self.backend.start(job.request, lambda result, j=job: self._finish(j, result))

    def _finish(self, job: TransferJob, result: TransferResult) -> None:
        link = job.link
        concurrency = max(1, self._in_flight.get(link, 0))
        self._in_flight[link] = max(0, self._in_flight.get(link, 0) - 1)
        if job.klass == PREFETCH:
            self._in_flight_prefetch[link] = max(0, self._in_flight_prefetch.get(link, 0) - 1)
        if self._on_done is not None:
            self._on_done(job, result, concurrency)
        self.pump(link)
