"""The data-plane subsystem: replica store, transfer scheduler, prefetcher.

A first-class data layer behind the staging interface of
:class:`~repro.data.manager.DataManager`:

* :class:`~repro.dataplane.replica_store.ReplicaStore` — per-endpoint storage
  budgets, pinning for in-flight task inputs, pluggable eviction (LRU and
  size-aware cost/benefit);
* :class:`~repro.dataplane.transfer_scheduler.TransferScheduler` — per-link
  priority queues with demand/prefetch service classes, cross-ticket
  coalescing and cancellation;
* :class:`~repro.dataplane.prefetch.Prefetcher` — pipelines staging of
  ready-soon tasks' inputs behind their predecessors' execution;
* :class:`~repro.dataplane.plane.DataPlane` — the facade composing them,
  drop-in compatible with the legacy FIFO manager.

Gated by ``Config.enable_dataplane`` (default on); ``--no-dataplane`` runs
the paper's plain §IV-E staging path byte-identically.
"""

from repro.dataplane.plane import DataPlane
from repro.dataplane.prefetch import Prefetcher
from repro.dataplane.replica_store import (
    CostBenefitEviction,
    EvictionPolicy,
    LRUEviction,
    Replica,
    ReplicaStore,
    create_eviction_policy,
)
from repro.dataplane.transfer_scheduler import (
    DEMAND,
    PREFETCH,
    TransferJob,
    TransferScheduler,
)

__all__ = [
    "CostBenefitEviction",
    "DEMAND",
    "DataPlane",
    "EvictionPolicy",
    "LRUEviction",
    "PREFETCH",
    "Prefetcher",
    "Replica",
    "ReplicaStore",
    "TransferJob",
    "TransferScheduler",
    "create_eviction_policy",
]
