"""Pipelined prefetching — overlapping staging with predecessor execution.

The paper's data-aware schedulers hide staging behind computation for tasks
that are already *placed*; the prefetcher extends the overlap one step
earlier in the lifecycle.  A task is **ready-soon** when every one of its
unfinished predecessors has at least been dispatched — from that moment its
remaining wait is predecessor execution time, which is exactly the window a
wide-area transfer can hide inside.

Driven off the engine's EventBus:

* on :class:`~repro.engine.events.TaskDispatched` of a predecessor, the
  successor's *already available* inputs (workflow-declared files, outputs of
  predecessors that finished earlier) start moving;
* on :class:`~repro.engine.events.TaskCompleted` of a predecessor, its fresh
  outputs join the pipeline while the remaining predecessors still run.

The destination is a *guess*: the scheduler's placement hint (DHA's
earliest-finish-time selection over current state) when available, otherwise
the endpoint minimising bytes moved (the Locality rule).  To keep a batch of
guesses honest the prefetcher overlays **virtual claims** on the hint — each
guess books one slot at its endpoint until the task is really placed — so a
wave of ready-soon siblings fans out the way ``schedule()`` will fan them
out, instead of all aiming at the currently least-loaded site.

Guessing wrong or losing a prefetched replica to eviction is safe — demand
staging re-stages whatever is missing when the task is actually placed — and
every prefetch rides the
:data:`~repro.dataplane.transfer_scheduler.PREFETCH` service class, ordered
by DHA task priority, so speculation never delays demand traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.dag import TERMINAL_STATES, Task, TaskGraph, TaskState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.plane import DataPlane

__all__ = ["Prefetcher"]

#: Predecessor states that make a successor "ready-soon": nothing left ahead
#: of it but execution (and the successor itself is still pending).
_IN_FLIGHT = (TaskState.DISPATCHED, TaskState.RUNNING, TaskState.COMPLETED)


class Prefetcher:
    """Stages ready-soon tasks' available inputs ahead of placement."""

    def __init__(
        self,
        plane: "DataPlane",
        graph: TaskGraph,
        *,
        placement_hint: Optional[
            Callable[[Task, Optional[Dict[str, int]]], Optional[str]]
        ] = None,
        endpoint_names: Optional[Callable[[], List[str]]] = None,
        plan_provider: Optional[Callable[[], object]] = None,
        max_files_per_task: int = 32,
    ) -> None:
        self._plane = plane
        self._graph = graph
        self._placement_hint = placement_hint
        self._endpoint_names = endpoint_names
        #: Zero-arg callable returning the current placement plan (or None):
        #: when the task's dominant input has a plan replica root, the guess
        #: aims there before consulting the per-task EFT hint.
        self._plan_provider = plan_provider
        self.max_files_per_task = max_files_per_task
        #: Guessed destination per still-pending task, and the per-endpoint
        #: slots those guesses have booked (released on real placement).
        self._guesses: Dict[str, str] = {}
        self._virtual_claims: Dict[str, int] = {}
        #: READY-but-unplaced tasks already fed to the pipeline — the pump
        #: re-offers them every round while capacity is starved, and one
        #: consideration per starvation episode is enough.
        self._unplaced_seen: set = set()

        # Counters (metrics / benchmarks).
        self.issued = 0
        #: Guessed destinations confirmed / refuted by the real placement.
        self.guesses_confirmed = 0
        self.guesses_missed = 0

    # ---------------------------------------------------------------- events
    def on_predecessor_progress(self, task_id: str) -> None:
        """A task was dispatched or completed: feed its ready-soon successors."""
        if task_id not in self._graph:
            return
        for successor in self._graph.successors(task_id):
            self.consider(successor)

    def on_task_placed(self, task_id: str, endpoint: str) -> None:
        """The real placement landed: release the guess's virtual claim."""
        self._unplaced_seen.discard(task_id)
        guess = self._release_guess(task_id)
        if guess is None:
            return
        if guess == endpoint:
            self.guesses_confirmed += 1
        else:
            self.guesses_missed += 1

    def on_task_terminal(self, task_id: str) -> None:
        """A task failed terminally: its guess — and the guesses of any
        successors the failure cascaded into cancelling — must not keep
        booking phantom backlog.  Terminal events are rare, so one sweep of
        the outstanding guesses is cheap.  The unplaced-starvation marker is
        dropped too, so terminally failed tasks cannot accumulate in
        ``_unplaced_seen`` forever."""
        self._unplaced_seen.discard(task_id)
        self._release_guess(task_id)
        for guessed_id in list(self._guesses):
            if guessed_id not in self._graph:
                self._release_guess(guessed_id)
                self._unplaced_seen.discard(guessed_id)
            elif self._graph.get(guessed_id).state in TERMINAL_STATES:
                self._release_guess(guessed_id)
                self._unplaced_seen.discard(guessed_id)

    def _release_guess(self, task_id: str) -> Optional[str]:
        guess = self._guesses.pop(task_id, None)
        if guess is None:
            return None
        count = self._virtual_claims.get(guess, 0)
        if count > 1:
            self._virtual_claims[guess] = count - 1
        else:
            self._virtual_claims.pop(guess, None)
        return guess

    def consider_unplaced(self, task: Task) -> int:
        """Prefetch for a READY task the scheduler could not place this round.

        The task is past ready-soon — it is waiting for capacity, not for
        predecessors — so its inputs can move toward the hinted endpoint
        while the pool drains.
        """
        if task.state != TaskState.READY:
            return 0
        if task.task_id in self._unplaced_seen:
            return 0
        self._unplaced_seen.add(task.task_id)
        return self._prefetch_inputs(task)

    # ------------------------------------------------------------------ logic
    def consider(self, task: Task) -> int:
        """Prefetch ``task``'s currently available inputs; returns count issued."""
        if task.state != TaskState.PENDING:
            return 0  # ready or beyond: demand staging owns it now
        if not self._ready_soon(task):
            return 0
        return self._prefetch_inputs(task)

    def _prefetch_inputs(self, task: Task) -> int:
        files = self._available_inputs(task)
        if not files:
            return 0
        destination = self._guess_destination(task)
        if destination is None:
            return 0
        issued = 0
        for file in files[: self.max_files_per_task]:
            if self._plane.prefetch(file, destination, priority=task.priority):
                issued += 1
                self.issued += 1
        return issued

    def _ready_soon(self, task: Task) -> bool:
        for parent in self._graph.predecessors(task.task_id):
            if parent.state not in _IN_FLIGHT:
                return False
        return True

    def _available_inputs(self, task: Task) -> List:
        """Inputs that exist somewhere already, in deterministic order."""
        files = []
        seen = set()
        for file in task.input_files:
            if file.size_mb > 0 and file.locations and file.file_id not in seen:
                seen.add(file.file_id)
                files.append(file)
        for parent in self._graph.predecessors(task.task_id):
            if parent.state != TaskState.COMPLETED:
                continue
            for file in parent.output_files:
                if file.size_mb > 0 and file.locations and file.file_id not in seen:
                    seen.add(file.file_id)
                    files.append(file)
        return files

    def _guess_destination(self, task: Task) -> Optional[str]:
        if task.assigned_endpoint is not None:
            return task.assigned_endpoint
        cached = self._guesses.get(task.task_id)
        if cached is not None:
            return cached
        guess = self._fresh_guess(task)
        if guess is not None:
            # Book one slot at the guessed endpoint so the next sibling's
            # hint sees the backlog schedule() will see — a wave of
            # ready-soon tasks fans out instead of piling onto one site.
            self._guesses[task.task_id] = guess
            self._virtual_claims[guess] = self._virtual_claims.get(guess, 0) + 1
        return guess

    def _fresh_guess(self, task: Task) -> Optional[str]:
        root = self._plan_root_guess(task)
        if root is not None:
            return root
        if self._placement_hint is not None:
            hint = self._placement_hint(task, self._virtual_claims)
            if hint is not None:
                return hint
        if self._endpoint_names is None:
            return None
        names = self._endpoint_names()
        if not names:
            return None
        # Locality fallback: the endpoint that would move the fewest bytes.
        return min(
            names,
            key=lambda name: (self._plane.bytes_to_move_mb(task.input_files, name), name),
        )

    def _plan_root_guess(self, task: Task) -> Optional[str]:
        """The plan replica root of the task's largest rooted input, if any.

        The global optimizer already decided where the warm copy of each hot
        dataset should live; a consumer's inputs are most cheaply assembled
        there, so the guess defers to the plan before re-deriving an answer
        from per-task EFT state.
        """
        provider = self._plan_provider
        plan = provider() if provider is not None else None
        if plan is None:
            return None
        rooted = [
            (file, plan.root_for(file.file_id))
            for file in task.input_files
            if plan.root_for(file.file_id) is not None
        ]
        if not rooted:
            return None
        rooted.sort(key=lambda pair: (-pair[0].size_mb, pair[0].file_id))
        return rooted[0][1]
