"""The data plane — capacity-bounded, priority-scheduled staging (§IV-E++).

:class:`DataPlane` is a drop-in replacement for
:class:`~repro.data.manager.DataManager` (same staging interface, same
aggregate counters) that routes every file movement through the subsystem's
three components:

* a :class:`~repro.dataplane.replica_store.ReplicaStore` giving each endpoint
  a storage budget with pinning and pluggable eviction;
* a :class:`~repro.dataplane.transfer_scheduler.TransferScheduler` replacing
  the per-link FIFO with priority queues, multi-source selection and
  class-aware concurrency shaping;
* a :class:`~repro.dataplane.prefetch.Prefetcher` (wired by the engine) that
  pipelines ready-soon tasks' inputs behind their predecessors' execution.

Beyond the legacy manager it also:

* picks transfer sources *bandwidth-aware*: the replica whose link promises
  the cheapest arrival, discounted by the pressure already queued on it;
* coalesces duplicate ``(file, destination)`` requests across tickets and
  upgrades in-queue prefetches that a demand request catches up with;
* supersedes a task's previous ticket when the task is re-placed, cancelling
  queued transfers nobody else is waiting on;
* cancels queued transfers toward crashed endpoints instead of letting them
  waste link capacity;
* attributes per-ticket transfer volume to *live* tickets only, so the Table
  IV/V aggregates cannot double-count a failed-then-retried transfer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.data.manager import DataManager, StagingTicket, task_namespace
from repro.data.remote_file import RemoteFile
from repro.data.transfer import TransferBackend, TransferRequest, TransferResult
from repro.dataplane.replica_store import ReplicaStore, create_eviction_policy
from repro.dataplane.transfer_scheduler import (
    DEMAND,
    PREFETCH,
    TransferJob,
    TransferScheduler,
)
from repro.sim.kernel import Clock

__all__ = ["DataPlane"]

#: Multi-source selection tolerates a plan replica root costing up to this
#: factor of the true cheapest source before abandoning it.  Small enough
#: that steering never doubles a transfer, large enough to absorb transient
#: link-pressure differences between equivalent replicas.
_ROOT_PREFERENCE_FACTOR = 1.25


class DataPlane(DataManager):
    """Replica store + transfer scheduler behind the DataManager interface."""

    def __init__(
        self,
        backend: TransferBackend,
        clock: Clock,
        *,
        mechanism: str = "globus",
        max_concurrent_transfers: int = 4,
        max_retries: int = 3,
        storage_budget_mb: Optional[Dict[str, Optional[float]]] = None,
        default_storage_mb: Optional[float] = None,
        eviction_policy: str = "lru",
    ) -> None:
        super().__init__(
            backend,
            clock,
            mechanism=mechanism,
            max_concurrent_transfers=max_concurrent_transfers,
            max_retries=max_retries,
        )
        self.store = ReplicaStore(
            storage_budget_mb,
            policy=create_eviction_policy(eviction_policy),
            default_capacity_mb=default_storage_mb,
            refetch_cost=self._refetch_cost_s,
            on_evict=self._on_replica_evicted,
        )
        self.transfers = TransferScheduler(
            backend,
            max_concurrent_per_link=max_concurrent_transfers,
            on_done=self._on_job_done,
        )

        #: Zero-arg callable returning the current placement plan (or None);
        #: multi-source selection prefers a file's plan replica root while
        #: its cost stays within a small factor of the true cheapest source.
        self._plan_provider = None

        # Data-plane counters (metrics collector / benchmarks).
        self.cache_hits = 0
        self.cache_misses = 0
        self.prefetch_issued = 0
        self.prefetch_issued_mb = 0.0
        #: Prefetched replicas a demand staging later found already present.
        self.prefetch_hits = 0
        #: Demand requests that caught up with an in-queue/in-flight prefetch.
        self.prefetch_joined = 0
        self.superseded_tickets = 0

    def set_plan_provider(self, provider) -> None:
        """Wire the placement service's plan into multi-source selection."""
        self._plan_provider = provider

    # ------------------------------------------------------------------ stats
    @property
    def eviction_count(self) -> int:
        return self.store.eviction_count

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def prefetch_usefulness(self) -> float:
        """Fraction of issued prefetches that demand staging benefited from."""
        useful = self.prefetch_hits + self.prefetch_joined
        return useful / self.prefetch_issued if self.prefetch_issued else 0.0

    def stats_dict(self) -> Dict[str, float]:
        """Snapshot of the data-plane counters (metrics collector payload)."""
        return {
            "bytes_moved_mb": round(self.total_transferred_mb, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate(), 6),
            "evictions": self.store.eviction_count,
            "evicted_mb": round(self.store.evicted_mb, 6),
            "prefetch_issued": self.prefetch_issued,
            "prefetch_issued_mb": round(self.prefetch_issued_mb, 6),
            "prefetch_useful": self.prefetch_hits + self.prefetch_joined,
            "prefetch_wasted": self.store.prefetch_wasted,
            "prefetch_usefulness": round(self.prefetch_usefulness(), 6),
            "cancelled_transfers": self.transfers.cancelled_count,
            "superseded_tickets": self.superseded_tickets,
            "peak_overflow_mb": round(self.store.peak_overflow_mb, 6),
        }

    # ---------------------------------------------------------------- staging
    def stage(
        self,
        task_id: str,
        files: Iterable[RemoteFile],
        destination: str,
        priority: float = 0.0,
    ) -> StagingTicket:
        """Ensure ``files`` are present on ``destination`` for ``task_id``.

        ``priority`` (the task's DHA upward rank) orders the resulting
        transfers within the demand class.
        """
        previous = self._tickets_by_task.get(task_id)
        if previous is not None and previous.completed_at is None:
            self._supersede(previous)
        self.store.release_task(task_id)

        ticket = StagingTicket(
            task_id=task_id, destination=destination, created_at=self.clock.now()
        )
        self._tickets[ticket.ticket_id] = ticket
        self._tickets_by_task[task_id] = ticket
        self._tickets_by_namespace[task_namespace(task_id)].append(ticket)

        sized = [f for f in files if f.size_mb > 0]
        # Pin every input before tracking: track() enforces the destination
        # budget, and a later input's resident home replica must already be
        # pinned (pending pins apply at insert) so an earlier input's
        # tracking cannot evict it out of this very task's working set.
        for file in sized:
            self.store.pin(file, destination, task_id)
        for file in sized:
            self.store.track(file)

        missing = self.missing_files(sized, destination)
        missing_ids = {f.file_id for f in missing}
        for file in sized:
            if file.file_id in missing_ids:
                self.cache_misses += 1
                continue
            self.cache_hits += 1
            replica = self.store.replica(file.file_id, destination)
            if replica is not None and replica.prefetched and not replica.used:
                self.prefetch_hits += 1
            self.store.touch(file, destination)

        if not missing:
            ticket.completed_at = self.clock.now()
            self._notify(ticket)
            return ticket

        self._open_ticket_count += 1
        for file in missing:
            if ticket.failed:
                break  # an earlier input had no surviving replica
            self._join_or_enqueue(file, destination, ticket, priority)
        return ticket

    def prefetch(self, file: RemoteFile, destination: str, priority: float = 0.0) -> bool:
        """Speculatively move ``file`` toward ``destination``; True if issued."""
        if file.size_mb <= 0 or file.available_at(destination) or not file.locations:
            return False
        if self.store.is_offline(destination):
            return False  # never speculate toward a crashed endpoint
        if all(self.store.is_offline(s) for s in file.locations):
            # Every replica is quarantined.  Demand staging falls back to an
            # offline copy because the task cannot proceed otherwise;
            # speculation has no such excuse and simply declines.
            return False
        if self.transfers.active_job(file.file_id, destination) is not None:
            return False
        capacity = self.store.capacity_mb(destination)
        if capacity is not None and file.size_mb > capacity:
            return False  # could never be admitted; do not thrash the store
        self.store.track(file)
        src = self._pick_source(file, destination)
        request = TransferRequest(
            file=file, src=src, dst=destination, mechanism=self.mechanism
        )
        job = TransferJob(
            request=request,
            klass=PREFETCH,
            priority=priority,
            prefetch_origin=True,
            prefetch_priority=priority,
        )
        self.prefetch_issued += 1
        self.prefetch_issued_mb += file.size_mb
        self.transfers.submit(job)
        return True

    def register_output(self, file: RemoteFile, endpoint: str) -> None:
        """Record a produced output and charge it against the endpoint budget."""
        super().register_output(file, endpoint)
        self.store.admit(file, endpoint)

    def release_task(self, task_id: str) -> None:
        """The task reached a terminal state: its input pins are released."""
        self.store.release_task(task_id)

    def _release_task_state(self, task_id: str) -> None:
        """Tenant retirement: make sure no pin of the retired task survives."""
        self.store.release_task(task_id)

    # --------------------------------------------------------------- dynamics
    def on_endpoint_crashed(self, endpoint: str) -> None:
        """Quarantine the endpoint's replicas and cancel queued transfers to it.

        The replicas survive on disk (a rejoin brings them back — and when no
        endpoint survives, stranded tasks deliberately wait for one), but
        while the endpoint is down they are unreachable: multi-source
        selection, refetch-cost estimates, prefetching and the store's
        sole-replica eviction protection all stop counting them.  In-flight
        transfers toward the endpoint are left to land — the copy is on that
        disk and becomes useful again at rejoin — but quarantined like every
        other replica there.

        Queued demand jobs are only cancelled once no *authoritative* ticket
        waits on them (the failure coordinator re-places the stranded tasks,
        whose new tickets supersede the old ones); prefetch jobs are
        speculative and are dropped outright.
        """
        self.store.mark_offline(endpoint)
        for job in self.transfers.queued_jobs():
            if job.request.dst != endpoint:
                continue
            live = [t for t in job.tickets if self._authoritative(t)]
            if live:
                continue
            if self.transfers.cancel(job):
                self._detach_tickets(job)
        # Queued jobs that chose the crashed endpoint as their *source* are
        # re-issued from an online replica (same sweep eviction gets).  When
        # no online replica is left, demand keeps its last-resort source but
        # speculation is dropped — prefetch never copies from a corpse.  The
        # cancel check runs first: _pick_source's quarantined-set fallback
        # would otherwise "re-route" the prefetch to another crashed copy.
        for job in self.transfers.queued_jobs():
            if job.request.src != endpoint or job.request.dst == endpoint:
                continue
            if job.klass == PREFETCH and all(
                self.store.is_offline(s) for s in job.request.file.locations
            ):
                if self.transfers.cancel(job):
                    self._detach_tickets(job)
                continue
            self._reroute_job(job)

    def on_endpoint_rejoined(self, endpoint: str) -> None:
        """The endpoint came back: its surviving replicas are reachable again."""
        self.store.mark_online(endpoint)

    # -------------------------------------------------------------- internal
    def _on_replica_evicted(self, replica) -> None:
        """Re-source queued transfers that were going to copy from the victim.

        A source replica is never pinned (pins protect destinations), so a
        queued job's chosen source can vanish before dispatch.  The job is
        re-issued from the cheapest surviving replica; in-flight transfers
        are left alone (their copy was already under way).
        """
        for job in self.transfers.queued_jobs():
            if job.request.src != replica.endpoint:
                continue
            if job.request.file.file_id != replica.file.file_id:
                continue
            self._reroute_job(job)

    def _reroute_job(self, job: TransferJob) -> bool:
        """Cancel-and-resubmit a queued job from the cheapest current source.

        No-op (False) when the file has no replica left, the re-pick lands on
        the same source, or the job already started.
        """
        request = job.request
        if not request.file.locations:
            return False  # nothing left to copy from; the job keeps its fate
        new_src = self._pick_source(request.file, request.dst)
        if new_src == request.src:
            return False
        if not self.transfers.cancel(job):
            return False
        self.transfers.cancelled_count -= 1  # an internal re-route, not a cancel
        fresh = TransferRequest(
            file=request.file, src=new_src, dst=request.dst, mechanism=self.mechanism
        )
        for ticket in job.tickets:
            ticket.pending_transfers.discard(request.transfer_id)
            ticket.pending_transfers.add(fresh.transfer_id)
        self.transfers.submit(
            TransferJob(
                request=fresh,
                klass=job.klass,
                priority=job.priority,
                tickets=job.tickets,
                attempts=job.attempts,
                prefetch_origin=job.prefetch_origin,
                demand_joined=job.demand_joined,
                prefetch_priority=job.prefetch_priority,
            )
        )
        return True

    def _authoritative(self, ticket: StagingTicket) -> bool:
        return self._tickets_by_task.get(ticket.task_id) is ticket and not ticket.failed

    def _refetch_cost_s(self, file: RemoteFile, endpoint: str) -> float:
        """Cheapest predicted re-staging time from the *other* online replicas."""
        sources = [
            s
            for s in sorted(file.locations)
            if s != endpoint and not self.store.is_offline(s)
        ]
        if not sources:
            return float("inf")
        return min(
            self.backend.estimate_duration(src, endpoint, file.size_mb, mechanism=self.mechanism)
            for src in sources
        )

    def _pick_source(
        self, file: RemoteFile, destination: str, exclude: Iterable[str] = ()
    ) -> str:
        """Cheapest *online* replica over the network, discounted by link
        pressure.  When every replica sits on a crashed endpoint, demand
        deliberately falls back to a quarantined copy — degrading to the
        legacy permissive behavior rather than failing the workflow — so the
        quarantine only shapes the choice while an online replica exists.
        ``exclude`` (interface parity with the legacy manager's retry path)
        drops just-failed replicas, falling back to the full set."""
        sources = sorted(file.locations)
        if not sources:
            raise ValueError(
                f"file {file.name!r} has no replica to stage to {destination!r} from"
            )
        excluded = set(exclude)
        if excluded:
            remaining = [s for s in sources if s not in excluded]
            sources = remaining or sources
        online = [s for s in sources if not self.store.is_offline(s)]
        sources = online or sources
        if len(sources) == 1:
            return sources[0]
        limit = self.transfers.max_concurrent_per_link

        def cost(src: str) -> float:
            base = self.backend.estimate_duration(
                src, destination, file.size_mb, mechanism=self.mechanism
            )
            pressure = self.transfers.link_pressure(src, destination)
            return base * (1.0 + pressure / limit)

        best = min(sources, key=cost)
        root = self._plan_root(file)
        if root is not None and root != best and root in sources:
            # Placement steering: serving repeat pulls from the plan root
            # keeps the root replica hot (eviction policies see the traffic)
            # and the other replicas expendable, at a bounded cost premium.
            if cost(root) <= _ROOT_PREFERENCE_FACTOR * cost(best):
                return root
        return best

    def _plan_root(self, file: RemoteFile) -> Optional[str]:
        provider = self._plan_provider
        plan = provider() if provider is not None else None
        if plan is None:
            return None
        return plan.root_for(file.file_id)

    def _join_or_enqueue(
        self, file: RemoteFile, destination: str, ticket: StagingTicket, priority: float
    ) -> None:
        if not file.locations:
            # No surviving replica anywhere (an expendable sole replica was
            # evicted before this — dynamic-DAG — consumer appeared, or the
            # file was never located).  Fail the ticket so the §IV-G ladder
            # fails the task cleanly instead of crashing the engine run.
            ticket.failed = True
            if ticket.completed_at is None:
                ticket.completed_at = self.clock.now()
                self._open_ticket_count -= 1
            self._notify(ticket)
            return
        job = self.transfers.active_job(file.file_id, destination)
        if job is not None:
            ticket.pending_transfers.add(job.request.transfer_id)
            job.tickets.append(ticket)
            if job.prefetch_origin and not job.demand_joined:
                # Demand caught up with an in-queue/in-flight prefetch: the
                # speculation paid off (counted once per prefetched transfer).
                job.demand_joined = True
                self.prefetch_joined += 1
            self.transfers.reprioritize(job, klass=DEMAND, priority=priority)
            return
        src = self._pick_source(file, destination)
        request = TransferRequest(
            file=file, src=src, dst=destination, mechanism=self.mechanism
        )
        ticket.pending_transfers.add(request.transfer_id)
        job = TransferJob(request=request, klass=DEMAND, priority=priority, tickets=[ticket])
        self.transfers.submit(job)

    def _supersede(self, ticket: StagingTicket) -> None:
        """A newer placement replaced ``ticket``: release what only it needs."""
        self.superseded_tickets += 1
        ticket.superseded = True
        for job in self.transfers.active_jobs():
            if ticket not in job.tickets:
                continue
            job.tickets.remove(ticket)
            ticket.pending_transfers.discard(job.request.transfer_id)
            if not job.tickets:
                if job.prefetch_origin:
                    # Back to speculation — at its original prefetch priority,
                    # not the departed demand ticket's: an upgraded prefetch
                    # whose demand left must not occupy a demand slot nor
                    # outrank genuinely hotter speculation.
                    self.transfers.demote(
                        job, klass=PREFETCH, priority=job.prefetch_priority
                    )
                else:
                    # Nobody else waits on it; a queued copy is cancelled
                    # outright (cancel() refuses in-flight jobs — those
                    # finish and their replica stays available for re-use).
                    self.transfers.cancel(job)
        ticket.pending_transfers.clear()
        if ticket.completed_at is None:
            ticket.completed_at = self.clock.now()
            self._open_ticket_count -= 1

    def _detach_tickets(self, job: TransferJob) -> None:
        """Complete (superseded) tickets of a cancelled job."""
        now = self.clock.now()
        for ticket in job.tickets:
            ticket.pending_transfers.discard(job.request.transfer_id)
            if ticket.done and ticket.completed_at is None:
                ticket.completed_at = now
                self._open_ticket_count -= 1
                self._notify(ticket)
        job.tickets.clear()

    def _on_job_done(self, job: TransferJob, result: TransferResult, concurrency: int) -> None:
        for callback in self._transfer_callbacks:
            callback(result, concurrency)
        self.transfer_count += 1  # attempts, like the legacy manager

        if result.success:
            self.transfers.release(job)
            size = job.request.size_mb
            pair = (job.request.src, job.request.dst)
            self.total_transferred_mb += size
            self.volume_by_pair_mb[pair] += size
            self.store.admit(
                job.request.file, job.request.dst, prefetched=job.prefetch_origin
            )
            if job.tickets:
                # The arrival directly served demand: mark the replica used so
                # the prefetch-hit accounting cannot count it a second time.
                self.store.touch(job.request.file, job.request.dst)
            live = [t for t in job.tickets if not t.failed and not t.superseded]
            now = self.clock.now()
            for ticket in live:
                # Volume attribution: live tickets only, exactly once per
                # successful transfer — retries never double-count.
                share = size / len(live)
                ticket.transferred_mb += share
                self.volume_by_namespace_mb[task_namespace(ticket.task_id)] += share
                ticket.pending_transfers.discard(job.request.transfer_id)
                if ticket.done and ticket.completed_at is None:
                    ticket.completed_at = now
                    self._open_ticket_count -= 1
                    self._notify(ticket)
            return

        self.failed_transfer_count += 1
        if job.attempts <= self.max_retries:
            self.retry_count += 1
            self.transfers.requeue(job)
            return
        self.transfers.release(job)
        now = self.clock.now()
        for ticket in job.tickets:
            if ticket.failed:
                continue
            ticket.failed = True
            ticket.pending_transfers.discard(job.request.transfer_id)
            if ticket.completed_at is None:
                ticket.completed_at = now
                self._open_ticket_count -= 1
            self._notify(ticket)
