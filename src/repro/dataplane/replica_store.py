"""Capacity-bounded replica store — the data plane's storage layer.

Every endpoint of the federation gets a staging-storage budget (GB).  The
store tracks which replicas occupy that budget, *pins* the inputs of
in-flight tasks so staging can never be undone from under a task, and frees
space with a pluggable eviction policy when an arriving replica would
overflow the budget.

Evicting a replica calls :meth:`~repro.data.remote_file.RemoteFile.remove_location`,
which bumps the global replica-set generation
(:func:`repro.data.remote_file.location_version`) — the scalar prediction
cache and the vector :class:`~repro.sched.vector.PredictionIndex` staging
matrix both stamp their entries with it, so scheduler predictions invalidate
automatically when the store reshapes the replica catalog.

Two invariants bound what eviction may do:

* **pinned replicas are untouchable** — a file pinned by any in-flight task
  at an endpoint stays there until every pinning task releases it;
* **sole replicas are untouchable** — evicting the last copy of a file would
  lose data the workflow may still need (task outputs cannot be recomputed),
  so only files with another live replica are candidates — *unless* the file
  has been marked **expendable** (every consumer of the producing task
  completed; the engine's output-lifecycle hook decides), in which case even
  the last copy may be dropped to reclaim space.

When pinned + sole-replica bytes alone exceed the budget the store runs in
*overflow*: the excess is tracked (:attr:`ReplicaStore.peak_overflow_mb`)
rather than enforced, mirroring a real staging area that must hold the
working set of the tasks currently running.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.data.remote_file import RemoteFile, bump_location_version

__all__ = [
    "CostBenefitEviction",
    "EvictionPolicy",
    "LRUEviction",
    "Replica",
    "ReplicaStore",
    "create_eviction_policy",
]


@dataclass
class Replica:
    """One copy of a file occupying an endpoint's staging storage."""

    file: RemoteFile
    endpoint: str
    size_mb: float
    #: Monotonic access stamp (insertion/touch order, deterministic).
    last_touch: int = 0
    #: Tasks currently pinning this replica (their inputs live here).
    pinned_by: Set[str] = field(default_factory=set)
    #: True when the replica arrived through the prefetch pipeline.
    prefetched: bool = False
    #: True once a demand staging actually consumed the prefetched replica.
    used: bool = False

    @property
    def pinned(self) -> bool:
        return bool(self.pinned_by)


class EvictionPolicy(ABC):
    """Orders eviction candidates; lower keys are evicted first."""

    name: str = "base"

    @abstractmethod
    def key(self, replica: Replica, refetch_cost_s: float) -> Tuple:
        """Sort key for ``replica`` (``refetch_cost_s`` = cheapest re-stage)."""


class LRUEviction(EvictionPolicy):
    """Least-recently-used replicas go first (file id breaks ties)."""

    name = "lru"

    def key(self, replica: Replica, refetch_cost_s: float) -> Tuple:
        return (replica.last_touch, replica.file.file_id)


class CostBenefitEviction(EvictionPolicy):
    """Size-aware cost/benefit: evict cheap-to-refetch bulk first.

    The key is the re-staging cost *per megabyte freed* — a large replica
    with a fast remaining source frees a lot of space for little risk, a
    small replica behind a slow WAN link is kept.  Recency and file id break
    ties deterministically.
    """

    name = "cost_benefit"

    def key(self, replica: Replica, refetch_cost_s: float) -> Tuple:
        cost_per_mb = refetch_cost_s / max(replica.size_mb, 1e-9)
        return (cost_per_mb, replica.last_touch, replica.file.file_id)


def create_eviction_policy(name: str) -> EvictionPolicy:
    if name == "lru":
        return LRUEviction()
    if name == "cost_benefit":
        return CostBenefitEviction()
    raise ValueError(f"unknown eviction policy {name!r}; expected 'lru' or 'cost_benefit'")


#: Callback invoked as ``on_evict(replica)`` after a replica was dropped.
EvictCallback = Callable[[Replica], None]


class ReplicaStore:
    """Per-endpoint replica catalog with budgets, pins and eviction."""

    def __init__(
        self,
        capacity_mb: Optional[Dict[str, Optional[float]]] = None,
        *,
        policy: Optional[EvictionPolicy] = None,
        default_capacity_mb: Optional[float] = None,
        refetch_cost: Optional[Callable[[RemoteFile, str], float]] = None,
        on_evict: Optional[EvictCallback] = None,
    ) -> None:
        self._capacity: Dict[str, Optional[float]] = dict(capacity_mb or {})
        self._default_capacity = default_capacity_mb
        self.policy = policy or LRUEviction()
        self._refetch_cost = refetch_cost or (lambda file, endpoint: 0.0)
        self._on_evict = on_evict
        #: endpoint -> file_id -> replica (insertion ordered, deterministic).
        self._replicas: Dict[str, Dict[str, Replica]] = {}
        #: task_id -> list of (endpoint, file_id) pins held by the task.
        self._pins_by_task: Dict[str, List[Tuple[str, str]]] = {}
        #: (endpoint, file_id) -> tasks that pinned a not-yet-arrived replica.
        self._pending_pins: Dict[Tuple[str, str], Set[str]] = {}
        #: Files whose consumers all completed: sole replicas become fair game.
        self._expendable: Set[str] = set()
        #: Endpoints currently crashed: their replicas survive on disk (a
        #: rejoin brings them back) but are quarantined — they count neither
        #: as eviction backups nor as re-staging sources while down.
        self._offline: Set[str] = set()
        self._usage: Dict[str, float] = {}
        self._touch_seq = itertools.count(1)

        # Counters for the metrics collector / benchmarks.
        self.eviction_count = 0
        self.evicted_mb = 0.0
        #: Prefetched replicas evicted before any task read them.
        self.prefetch_wasted = 0
        self.peak_usage_mb: Dict[str, float] = {}
        #: Largest amount by which unevictable (pinned / sole-replica) bytes
        #: ever exceeded an endpoint's budget.
        self.peak_overflow_mb = 0.0

    # ---------------------------------------------------------------- queries
    def capacity_mb(self, endpoint: str) -> Optional[float]:
        """Budget of ``endpoint`` in MB (``None`` = unbounded)."""
        if endpoint in self._capacity:
            return self._capacity[endpoint]
        return self._default_capacity

    def usage_mb(self, endpoint: str) -> float:
        return self._usage.get(endpoint, 0.0)

    def replica(self, file_id: str, endpoint: str) -> Optional[Replica]:
        return self._replicas.get(endpoint, {}).get(file_id)

    def replica_count(self, endpoint: str) -> int:
        return len(self._replicas.get(endpoint, {}))

    def endpoints(self) -> List[str]:
        return list(self._replicas)

    # --------------------------------------------------------------- tracking
    def track(self, file: RemoteFile, *, prefetched: bool = False) -> None:
        """Account ``file``'s current replica locations (idempotent).

        Pre-existing replicas (workflow-declared inputs, home copies) are
        charged against the endpoint budget like any arrival: tracking one
        enforces the budget, so an endpoint seeded beyond capacity evicts —
        or records overflow — instead of silently exceeding its budget until
        the next :meth:`admit`.
        """
        if file.size_mb <= 0:
            return
        for endpoint in sorted(file.locations):
            if self.replica(file.file_id, endpoint) is None:
                self._insert(file, endpoint, prefetched=prefetched)
                if endpoint not in self._offline:
                    self._enforce_budget(endpoint, protect=file.file_id)

    def admit(self, file: RemoteFile, endpoint: str, *, prefetched: bool = False) -> List[Replica]:
        """A replica of ``file`` arrived at ``endpoint``; make room for it.

        Returns the replicas evicted to fit it (possibly empty).  The caller
        is expected to have added ``endpoint`` to ``file.locations`` already
        (the transfer backend does on completion).
        """
        if file.size_mb <= 0:
            return []
        existing = self.replica(file.file_id, endpoint)
        if existing is not None:
            existing.last_touch = next(self._touch_seq)
            return []
        self._insert(file, endpoint, prefetched=prefetched)
        if endpoint in self._offline:
            # An in-flight arrival landing on a crashed disk must not evict
            # quarantined replicas promised to survive until rejoin; the
            # budget is settled by mark_online().
            return []
        return self._enforce_budget(endpoint, protect=file.file_id)

    def touch(self, file: RemoteFile, endpoint: str) -> None:
        """Record an access to the replica (recency for LRU)."""
        replica = self.replica(file.file_id, endpoint)
        if replica is not None:
            replica.last_touch = next(self._touch_seq)
            replica.used = True

    def mark_expendable(self, file: RemoteFile) -> None:
        """Every consumer of ``file`` finished: its last replica may go too.

        Called by the engine's output-lifecycle hook.  The protection against
        sole-replica eviction exists because intermediate outputs cannot be
        recomputed; once nothing will ever read the file again, holding the
        last copy is pure budget waste.
        """
        self._expendable.add(file.file_id)

    def is_expendable(self, file_id: str) -> bool:
        return file_id in self._expendable

    # ------------------------------------------------------------- liveness
    def mark_offline(self, endpoint: str) -> None:
        """``endpoint`` crashed: quarantine its replicas until it rejoins.

        Reachability changes invalidate location-stamped prediction caches
        (scalar staging memo, vector staging matrix) via the replica-set
        generation, exactly like a catalog change would.
        """
        if endpoint in self._offline:
            return
        self._offline.add(endpoint)
        bump_location_version()

    def mark_online(self, endpoint: str) -> None:
        """``endpoint`` rejoined: its surviving replicas are reachable again.

        The budget deferred while the endpoint was down is re-applied now —
        arrivals that landed on the crashed disk never evicted anything (a
        dead machine does not reshape the catalog), so the rejoin settles
        any excess with full knowledge of what is reachable.
        """
        if endpoint not in self._offline:
            return
        self._offline.discard(endpoint)
        bump_location_version()
        self._enforce_budget(endpoint, protect=None)

    def is_offline(self, endpoint: str) -> bool:
        return endpoint in self._offline

    def reclaim(self, file: RemoteFile) -> None:
        """A new consumer appeared (dynamic DAG): re-protect the file.

        Closes the window from re-submission onward; a sole replica already
        evicted before the new consumer was submitted is genuinely gone.
        """
        self._expendable.discard(file.file_id)

    # ------------------------------------------------------------------- pins
    def pin(self, file: RemoteFile, endpoint: str, task_id: str) -> None:
        """Pin ``file`` at ``endpoint`` for ``task_id`` (arrivals auto-pin).

        Pinning a file that has not arrived yet is allowed: the pin is
        recorded and applied by :meth:`admit` when the replica lands.
        """
        if file.size_mb <= 0:
            return
        pins = self._pins_by_task.setdefault(task_id, [])
        key = (endpoint, file.file_id)
        if key in pins:
            return
        pins.append(key)
        replica = self.replica(file.file_id, endpoint)
        if replica is None:
            # Not there yet: remember the pin; _insert() re-applies it.
            self._pending_pins.setdefault(key, set()).add(task_id)
        else:
            replica.pinned_by.add(task_id)
            replica.last_touch = next(self._touch_seq)

    def release_task(self, task_id: str) -> None:
        """Drop every pin held by ``task_id`` (it finished, failed or moved)."""
        for endpoint, file_id in self._pins_by_task.pop(task_id, []):
            self._pending_pins.get((endpoint, file_id), set()).discard(task_id)
            replica = self.replica(file_id, endpoint)
            if replica is not None:
                replica.pinned_by.discard(task_id)

    def pinned_mb(self, endpoint: str) -> float:
        return float(
            sum(r.size_mb for r in self._replicas.get(endpoint, {}).values() if r.pinned)
        )

    # --------------------------------------------------------------- internal
    def _insert(self, file: RemoteFile, endpoint: str, *, prefetched: bool) -> Replica:
        replica = Replica(
            file=file,
            endpoint=endpoint,
            size_mb=file.size_mb,
            last_touch=next(self._touch_seq),
            prefetched=prefetched,
        )
        pending = self._pending_pins.pop((endpoint, file.file_id), None)
        if pending:
            replica.pinned_by.update(pending)
        self._replicas.setdefault(endpoint, {})[file.file_id] = replica
        usage = self._usage.get(endpoint, 0.0) + replica.size_mb
        self._usage[endpoint] = usage
        if usage > self.peak_usage_mb.get(endpoint, 0.0):
            self.peak_usage_mb[endpoint] = usage
        return replica

    def _enforce_budget(self, endpoint: str, protect: Optional[str]) -> List[Replica]:
        capacity = self.capacity_mb(endpoint)
        if capacity is None:
            return []
        evicted: List[Replica] = []
        while self._usage.get(endpoint, 0.0) > capacity:
            victim = self._select_victim(endpoint, protect)
            if victim is None:
                overflow = self._usage.get(endpoint, 0.0) - capacity
                if overflow > self.peak_overflow_mb:
                    self.peak_overflow_mb = overflow
                break
            self._evict(victim)
            evicted.append(victim)
        return evicted

    def _select_victim(self, endpoint: str, protect: Optional[str]) -> Optional[Replica]:
        candidates = [
            replica
            for file_id, replica in self._replicas.get(endpoint, {}).items()
            if file_id != protect
            and not replica.pinned
            and (self._has_reachable_backup(replica, endpoint) or file_id in self._expendable)
            and replica.file.available_at(endpoint)
        ]
        if not candidates:
            return None

        def refetch(replica: Replica) -> float:
            # Nothing will ever read an expendable file again: re-staging
            # cost is zero, making it the cheapest possible victim.
            if replica.file.file_id in self._expendable:
                return 0.0
            return self._refetch_cost(replica.file, endpoint)

        return min(candidates, key=lambda r: self.policy.key(r, refetch(r)))

    def _has_reachable_backup(self, replica: Replica, endpoint: str) -> bool:
        """Another replica exists at a currently *online* endpoint.

        A copy quarantined at a crashed endpoint must not license evicting
        the only reachable one — until the crash site rejoins, that copy
        cannot serve a re-stage.
        """
        return any(
            loc != endpoint and loc not in self._offline
            for loc in replica.file.locations
        )

    def _evict(self, replica: Replica) -> None:
        self._replicas[replica.endpoint].pop(replica.file.file_id, None)
        self._usage[replica.endpoint] = max(
            0.0, self._usage.get(replica.endpoint, 0.0) - replica.size_mb
        )
        replica.file.remove_location(replica.endpoint)
        self.eviction_count += 1
        self.evicted_mb += replica.size_mb
        if replica.prefetched and not replica.used:
            self.prefetch_wasted += 1
        if self._on_evict is not None:
            self._on_evict(replica)
