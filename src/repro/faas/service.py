"""Cloud-hosted federated FaaS service facade.

The service is the broker between clients and endpoints, mirroring the funcX
web service the paper builds on:

* task submission is routed to the requested endpoint after a small
  submission latency plus the WAN dispatch latency;
* results become visible to clients only after the result-polling latency;
* endpoint status is served from a cache that refreshes at most every
  ``status_refresh_interval_s`` — the staleness that motivates UniFaaS's
  local mocking mechanism (§IV-B).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Dict, List, Optional

from repro.core.exceptions import EndpointError
from repro.faas.endpoint import SimulatedEndpoint
from repro.faas.types import EndpointStatus, ServiceLatencyModel, TaskExecutionRecord, TaskExecutionRequest
from repro.sim.kernel import SimulationKernel

__all__ = ["FederatedFaaSService"]

ResultCallback = Callable[[TaskExecutionRecord], None]


class FederatedFaaSService:
    """Registry + broker for simulated endpoints."""

    def __init__(
        self,
        kernel: SimulationKernel,
        latency: Optional[ServiceLatencyModel] = None,
    ) -> None:
        self.kernel = kernel
        self.latency = latency or ServiceLatencyModel()
        self._endpoints: Dict[str, SimulatedEndpoint] = {}
        self._endpoint_uuids: Dict[str, str] = {}
        self._status_cache: Dict[str, EndpointStatus] = {}
        self._result_callbacks: List[ResultCallback] = []
        self._available_results: List[TaskExecutionRecord] = []
        self._uuid_counter = itertools.count(1)
        #: Cumulative count of tasks routed through the service.
        self.submitted_count = 0

    # ---------------------------------------------------------- registration
    def register_endpoint(self, endpoint: SimulatedEndpoint) -> str:
        """Register an endpoint and return its UUID-style identifier."""
        if endpoint.name in self._endpoints:
            raise EndpointError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint
        uuid = f"ep-{next(self._uuid_counter):04d}-{endpoint.name}"
        self._endpoint_uuids[endpoint.name] = uuid
        endpoint.add_completion_callback(self._on_endpoint_completion)
        self._status_cache[endpoint.name] = endpoint.status()
        return uuid

    def endpoint_names(self) -> List[str]:
        return list(self._endpoints)

    def endpoint(self, name: str) -> SimulatedEndpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise EndpointError(f"unknown endpoint {name!r}") from None

    def endpoint_uuid(self, name: str) -> str:
        self.endpoint(name)
        return self._endpoint_uuids[name]

    # ------------------------------------------------------------ submission
    def submit(self, endpoint_name: str, request: TaskExecutionRequest) -> None:
        """Submit a task for execution on ``endpoint_name``.

        The request reaches the endpoint after the submission latency (client
        to service) plus the dispatch latency (service to endpoint over the
        WAN).
        """
        endpoint = self.endpoint(endpoint_name)
        self.submitted_count += 1
        submitted_at = self.kernel.now()
        delay = self.latency.submit_latency_s + self.latency.dispatch_latency_s
        self.kernel.schedule(
            delay, endpoint.submit, request, submitted_at, label="service-dispatch"
        )

    def submit_batch(self, endpoint_name: str, requests: List[TaskExecutionRequest]) -> None:
        """Submit several tasks in one call, amortising the submission latency."""
        endpoint = self.endpoint(endpoint_name)
        self.submitted_count += len(requests)
        submitted_at = self.kernel.now()
        delay = self.latency.submit_latency_s + self.latency.dispatch_latency_s

        def deliver() -> None:
            for request in requests:
                endpoint.submit(request, submitted_at)

        self.kernel.schedule(delay, deliver, label="service-dispatch-batch")

    # --------------------------------------------------------------- results
    def add_result_callback(self, callback: ResultCallback) -> None:
        """Register a push-style callback for results arriving at the client."""
        self._result_callbacks.append(callback)

    def fetch_results(self, max_items: Optional[int] = None) -> List[TaskExecutionRecord]:
        """Pull-style result retrieval (used by tests and the FaaS client)."""
        if max_items is None or max_items >= len(self._available_results):
            out = self._available_results
            self._available_results = []
            return out
        out = self._available_results[:max_items]
        self._available_results = self._available_results[max_items:]
        return out

    def _on_endpoint_completion(self, record: TaskExecutionRecord) -> None:
        # The result becomes visible to the client after the polling latency.
        self.kernel.schedule(
            self.latency.result_poll_latency_s, self._deliver_result, record, label="service-result"
        )

    def _deliver_result(self, record: TaskExecutionRecord) -> None:
        self._available_results.append(record)
        for callback in self._result_callbacks:
            callback(record)

    # ---------------------------------------------------------------- status
    def endpoint_status(self, name: str, force_refresh: bool = False) -> EndpointStatus:
        """Return the (possibly stale) cached status of an endpoint.

        The cache entry is refreshed only when it is older than the service's
        ``status_refresh_interval_s`` or when ``force_refresh`` is set,
        reproducing funcX's periodically updated endpoint state.
        """
        endpoint = self.endpoint(name)
        cached = self._status_cache.get(name)
        age = self.kernel.now() - cached.as_of if cached is not None else float("inf")
        if force_refresh or cached is None or age >= self.latency.status_refresh_interval_s:
            cached = endpoint.status()
            self._status_cache[name] = cached
        return cached

    def all_statuses(self, force_refresh: bool = False) -> Dict[str, EndpointStatus]:
        return {name: self.endpoint_status(name, force_refresh) for name in self._endpoints}

    def set_status_refresh_interval(self, interval_s: float) -> None:
        """Change how stale the served endpoint statuses may get.

        Scenario dynamics use this to model staleness spikes: an overloaded
        or rate-limited web service stretching the window during which
        clients see outdated capacity (§IV-B's motivating failure mode).
        """
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.latency = replace(self.latency, status_refresh_interval_s=interval_s)
