"""Execution fabric abstraction used by the UniFaaS engine.

The orchestration engine (:class:`repro.core.client.UniFaaSClient`) programs
against :class:`ExecutionFabric`, which hides whether tasks run on the
discrete-event simulation substrate (:class:`SimulatedFabric`) or on real
thread-pool endpoints on the local machine
(:class:`repro.faas.local.LocalFabric`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

import numpy as np

from repro.core.dag import Task
from repro.core.exceptions import EndpointError
from repro.faas.client import FaaSClient
from repro.faas.endpoint import SimulatedEndpoint
from repro.faas.service import FederatedFaaSService
from repro.faas.types import EndpointStatus, TaskExecutionRecord, TaskExecutionRequest
from repro.sim.kernel import Clock, SimulationKernel

__all__ = ["ExecutionFabric", "SimulatedFabric"]


class ExecutionFabric(ABC):
    """Interface between the orchestration engine and task execution."""

    #: Time source shared with the engine, data manager and monitors.
    clock: Clock

    # ------------------------------------------------------------- topology
    @abstractmethod
    def endpoint_names(self) -> List[str]:
        """Names of the endpoints available for execution."""

    @abstractmethod
    def endpoint_status(self, name: str, force_refresh: bool = False) -> EndpointStatus:
        """Service-side (possibly stale) status of an endpoint."""

    @abstractmethod
    def true_status(self, name: str) -> EndpointStatus:
        """Ground-truth endpoint status (metrics/diagnostics only)."""

    @abstractmethod
    def speed_factor(self, name: str) -> float:
        """Relative hardware speed of an endpoint (1.0 = reference)."""

    # ------------------------------------------------------------ execution
    @abstractmethod
    def build_request(self, task: Task, resolved_args: Optional[tuple] = None,
                      resolved_kwargs: Optional[dict] = None) -> TaskExecutionRequest:
        """Create the execution request for ``task``."""

    @abstractmethod
    def submit(self, endpoint_name: str, request: TaskExecutionRequest) -> None:
        """Dispatch a request to an endpoint."""

    def flush(self) -> None:
        """Force any batched submissions out (no-op by default)."""

    def shutdown(self) -> None:
        """Release fabric resources (worker pools, ...); no-op by default."""

    @abstractmethod
    def process(self, timeout_s: Optional[float] = None) -> List[TaskExecutionRecord]:
        """Advance the fabric and return newly completed execution records."""

    @abstractmethod
    def pending_work(self) -> bool:
        """True while the fabric still has queued events or running tasks."""

    # -------------------------------------------------------------- scaling
    def request_workers(self, name: str, count: int) -> int:
        """Ask an endpoint to provision more workers (0 if unsupported)."""
        return 0

    def release_idle_workers(self, name: str, count: Optional[int] = None) -> int:
        """Ask an endpoint to release idle workers (0 if unsupported)."""
        return 0

    # -------------------------------------------------------------- metrics
    def worker_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-endpoint worker counters for the metrics collector."""
        snapshot: Dict[str, Dict[str, int]] = {}
        for name in self.endpoint_names():
            status = self.true_status(name)
            snapshot[name] = {
                "active": status.active_workers,
                "busy": status.busy_workers,
                "idle": status.idle_workers,
                "pending": status.pending_tasks,
            }
        return snapshot


class SimulatedFabric(ExecutionFabric):
    """Fabric backed by the discrete-event simulation substrate."""

    def __init__(
        self,
        kernel: SimulationKernel,
        service: FederatedFaaSService,
        *,
        batch_size: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.kernel = kernel
        self.clock = kernel.clock
        self.service = service
        self.faas_client = FaaSClient(service, batch_size=batch_size)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._completions: List[TaskExecutionRecord] = []
        self._outstanding = 0
        service.add_result_callback(self._on_result)

    # ------------------------------------------------------------- topology
    def endpoint_names(self) -> List[str]:
        return self.service.endpoint_names()

    def endpoint(self, name: str) -> SimulatedEndpoint:
        return self.service.endpoint(name)

    def endpoint_status(self, name: str, force_refresh: bool = False) -> EndpointStatus:
        return self.service.endpoint_status(name, force_refresh=force_refresh)

    def true_status(self, name: str) -> EndpointStatus:
        return self.service.endpoint(name).status()

    def speed_factor(self, name: str) -> float:
        return self.service.endpoint(name).speed_factor

    # ------------------------------------------------------------ execution
    def build_request(
        self,
        task: Task,
        resolved_args: Optional[tuple] = None,
        resolved_kwargs: Optional[dict] = None,
    ) -> TaskExecutionRequest:
        profile = task.sim_profile
        if profile is None:
            raise EndpointError(
                f"function {task.name!r} has no SimProfile; simulation mode "
                "needs one to sample the task's duration (local mode does not)"
            )
        input_mb = task.input_size_mb
        jitter_draw = 1.0
        if profile.jitter > 0:
            jitter_draw = float(self._rng.lognormal(0.0, profile.jitter))
        duration = profile.duration_on(1.0, input_mb=input_mb, jitter_draw=jitter_draw)
        return TaskExecutionRequest(
            task_id=task.task_id,
            function_name=task.name,
            cores=profile.cores,
            input_mb=input_mb,
            sim_duration_s=duration,
            sim_output_mb=profile.output_mb(input_mb),
            sim_failure_rate=profile.failure_rate,
        )

    def submit(self, endpoint_name: str, request: TaskExecutionRequest) -> None:
        if endpoint_name not in self.service.endpoint_names():
            raise EndpointError(f"unknown endpoint {endpoint_name!r}")
        self._outstanding += 1
        self.faas_client.submit(endpoint_name, request)

    def flush(self) -> None:
        self.faas_client.flush()

    def process(self, timeout_s: Optional[float] = None) -> List[TaskExecutionRecord]:
        # Make sure batched submissions are not stuck waiting for a full batch
        # while the kernel runs out of other events.
        if self.faas_client.queued_requests and self.kernel.pending_events == 0:
            self.faas_client.flush()
        if self.kernel.pending_events == 0 and self._outstanding == 0:
            # Quiescent: only daemon housekeeping remains in the queue.
            # Stepping now would warp the clock across the idle gap before
            # the pump has had a chance to dispatch work (most visibly at
            # run start, when nothing is scheduled yet).
            return self.drain_completions()
        self.kernel.step()
        return self.drain_completions()

    def drain_completions(self) -> List[TaskExecutionRecord]:
        out = self._completions
        self._completions = []
        return out

    def pending_work(self) -> bool:
        return (
            self.kernel.pending_events > 0
            or self.faas_client.queued_requests > 0
            or self._outstanding > 0
        )

    def _on_result(self, record: TaskExecutionRecord) -> None:
        self._outstanding = max(0, self._outstanding - 1)
        self._completions.append(record)

    # -------------------------------------------------------------- scaling
    def request_workers(self, name: str, count: int) -> int:
        return self.service.endpoint(name).request_workers(count)

    def release_idle_workers(self, name: str, count: Optional[int] = None) -> int:
        return self.service.endpoint(name).release_idle_workers(count)
