"""Local (real-execution) endpoints and fabric.

This is the mode the examples use to demonstrate the programming model: the
decorated function bodies really execute, on thread-pool "endpoints" hosted
in the current process.  The orchestration engine sees exactly the same
:class:`~repro.faas.fabric.ExecutionFabric` interface as in simulation mode.
"""

from __future__ import annotations

import queue
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.core.dag import Task
from repro.core.exceptions import EndpointError
from repro.faas.fabric import ExecutionFabric
from repro.faas.types import EndpointStatus, TaskExecutionRecord, TaskExecutionRequest
from repro.sim.kernel import WallClock

__all__ = ["LocalEndpoint", "LocalFabric"]


class LocalEndpoint:
    """A pool of worker threads executing real Python functions."""

    def __init__(self, name: str, max_workers: int = 4, speed_factor: float = 1.0) -> None:
        if max_workers <= 0:
            raise EndpointError("max_workers must be positive")
        self.name = name
        self.max_workers = max_workers
        self.speed_factor = speed_factor
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=f"unifaas-{name}"
        )
        self._lock = threading.Lock()
        self._busy = 0
        self.completed_count = 0
        self.failed_count = 0

    # ---------------------------------------------------------------- status
    @property
    def busy_workers(self) -> int:
        with self._lock:
            return self._busy

    @property
    def active_workers(self) -> int:
        return self.max_workers

    @property
    def idle_workers(self) -> int:
        return max(0, self.max_workers - self.busy_workers)

    def status(self, now: float = 0.0) -> EndpointStatus:
        busy = self.busy_workers
        return EndpointStatus(
            endpoint=self.name,
            online=True,
            active_workers=self.max_workers,
            busy_workers=busy,
            idle_workers=self.max_workers - busy,
            pending_tasks=0,
            max_workers=self.max_workers,
            cores_per_node=self.max_workers,
            cpu_freq_ghz=1.0,
            ram_gb=1.0,
            as_of=now,
        )

    # ------------------------------------------------------------- execution
    def submit(
        self,
        request: TaskExecutionRequest,
        clock: WallClock,
        result_queue: "queue.Queue[TaskExecutionRecord]",
    ) -> None:
        if request.callable_ is None:
            raise EndpointError(
                f"local endpoint {self.name} received a request without a callable"
            )
        submitted_at = clock.now()
        with self._lock:
            self._busy += 1

        def run() -> None:
            started_at = clock.now()
            success = True
            result = None
            error: Optional[str] = None
            output_mb = 0.0
            try:
                result = request.callable_(*request.args, **request.kwargs)
                output_mb = float(getattr(result, "size_mb", 0.0) or 0.0)
            except Exception as exc:  # noqa: BLE001 - report any task failure
                success = False
                error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            completed_at = clock.now()
            with self._lock:
                self._busy -= 1
                if success:
                    self.completed_count += 1
                else:
                    self.failed_count += 1
            record = TaskExecutionRecord(
                task_id=request.task_id,
                endpoint=self.name,
                function_name=request.function_name,
                success=success,
                submitted_at=submitted_at,
                started_at=started_at,
                completed_at=completed_at,
                input_mb=request.input_mb,
                output_mb=output_mb,
                result=result,
                error=error,
                worker_id=threading.current_thread().name,
                cores_per_node=self.max_workers,
            )
            result_queue.put(record)

        self._executor.submit(run)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


class LocalFabric(ExecutionFabric):
    """Fabric running tasks on :class:`LocalEndpoint` thread pools."""

    def __init__(self, endpoints: Optional[List[LocalEndpoint]] = None) -> None:
        self.clock = WallClock()
        self._endpoints: Dict[str, LocalEndpoint] = {}
        self._results: "queue.Queue[TaskExecutionRecord]" = queue.Queue()
        self._outstanding = 0
        self._lock = threading.Lock()
        for endpoint in endpoints or []:
            self.add_endpoint(endpoint)

    # ------------------------------------------------------------- topology
    def add_endpoint(self, endpoint: LocalEndpoint) -> None:
        if endpoint.name in self._endpoints:
            raise EndpointError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint

    def endpoint_names(self) -> List[str]:
        return list(self._endpoints)

    def endpoint(self, name: str) -> LocalEndpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise EndpointError(f"unknown endpoint {name!r}") from None

    def endpoint_status(self, name: str, force_refresh: bool = False) -> EndpointStatus:
        return self.endpoint(name).status(self.clock.now())

    def true_status(self, name: str) -> EndpointStatus:
        return self.endpoint_status(name)

    def speed_factor(self, name: str) -> float:
        return self.endpoint(name).speed_factor

    # ------------------------------------------------------------ execution
    def build_request(
        self,
        task: Task,
        resolved_args: Optional[tuple] = None,
        resolved_kwargs: Optional[dict] = None,
    ) -> TaskExecutionRequest:
        return TaskExecutionRequest(
            task_id=task.task_id,
            function_name=task.name,
            cores=task.cores,
            input_mb=task.input_size_mb,
            callable_=task.function.callable,
            args=resolved_args if resolved_args is not None else task.args,
            kwargs=resolved_kwargs if resolved_kwargs is not None else dict(task.kwargs),
        )

    def submit(self, endpoint_name: str, request: TaskExecutionRequest) -> None:
        endpoint = self.endpoint(endpoint_name)
        with self._lock:
            self._outstanding += 1
        endpoint.submit(request, self.clock, self._results)

    def process(self, timeout_s: Optional[float] = None) -> List[TaskExecutionRecord]:
        records: List[TaskExecutionRecord] = []
        timeout = 0.02 if timeout_s is None else timeout_s
        try:
            records.append(self._results.get(timeout=timeout))
        except queue.Empty:
            return records
        # Drain whatever else is immediately available.
        while True:
            try:
                records.append(self._results.get_nowait())
            except queue.Empty:
                break
        with self._lock:
            self._outstanding -= len(records)
        return records

    def pending_work(self) -> bool:
        with self._lock:
            return self._outstanding > 0

    def shutdown(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.shutdown()
