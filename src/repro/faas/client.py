"""Client-side interface to the federated FaaS service.

UniFaaS's task executor talks to the service exclusively through this client
(§IV-F): it wraps task submission (with batching, §IV-H), result polling and
endpoint-status queries.  Keeping the client thin makes it obvious which
latencies belong to the client/service boundary (Fig. 5) and gives tests a
single seam for failure injection.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.faas.service import FederatedFaaSService
from repro.faas.types import EndpointStatus, TaskExecutionRecord, TaskExecutionRequest

__all__ = ["FaaSClient"]


class FaaSClient:
    """Batched submit/poll client for the federated FaaS service."""

    def __init__(self, service: FederatedFaaSService, batch_size: int = 64) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.service = service
        self.batch_size = batch_size
        self._pending: Dict[str, List[TaskExecutionRequest]] = defaultdict(list)
        #: Number of service round-trips performed for submissions.
        self.submit_calls = 0

    # ------------------------------------------------------------ submission
    def submit(self, endpoint_name: str, request: TaskExecutionRequest) -> None:
        """Queue a request; it is sent when the per-endpoint batch fills up."""
        batch = self._pending[endpoint_name]
        batch.append(request)
        if len(batch) >= self.batch_size:
            self._flush_endpoint(endpoint_name)

    def flush(self) -> None:
        """Send every queued request immediately."""
        for endpoint_name in list(self._pending):
            self._flush_endpoint(endpoint_name)

    def _flush_endpoint(self, endpoint_name: str) -> None:
        batch = self._pending.pop(endpoint_name, [])
        if not batch:
            return
        self.submit_calls += 1
        if len(batch) == 1:
            self.service.submit(endpoint_name, batch[0])
        else:
            self.service.submit_batch(endpoint_name, batch)

    @property
    def queued_requests(self) -> int:
        return sum(len(v) for v in self._pending.values())

    # --------------------------------------------------------------- results
    def poll_results(self, max_items: Optional[int] = None) -> List[TaskExecutionRecord]:
        """Retrieve results that have reached the service."""
        return self.service.fetch_results(max_items)

    # ---------------------------------------------------------------- status
    def endpoint_status(self, name: str, force_refresh: bool = False) -> EndpointStatus:
        return self.service.endpoint_status(name, force_refresh=force_refresh)

    def all_statuses(self, force_refresh: bool = False) -> Dict[str, EndpointStatus]:
        return self.service.all_statuses(force_refresh=force_refresh)

    def endpoint_names(self) -> List[str]:
        return self.service.endpoint_names()
