"""Shared datatypes of the FaaS fabric layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

__all__ = [
    "EndpointStatus",
    "ServiceLatencyModel",
    "TaskExecutionRecord",
    "TaskExecutionRequest",
]


@dataclass(frozen=True)
class EndpointStatus:
    """Point-in-time status snapshot of an endpoint.

    The web service serves these snapshots to clients; crucially it only
    refreshes them every ``status_refresh_interval_s`` (§IV-B), which is why
    the endpoint monitor keeps its own mock endpoints.
    """

    endpoint: str
    online: bool
    active_workers: int
    busy_workers: int
    idle_workers: int
    pending_tasks: int
    max_workers: int
    cores_per_node: int
    cpu_freq_ghz: float
    ram_gb: float
    #: Simulation time at which this snapshot was taken.
    as_of: float = 0.0

    @property
    def free_capacity(self) -> int:
        """Workers that could accept a task right now."""
        return max(0, self.idle_workers - self.pending_tasks)

    def hardware_features(self) -> tuple[float, float, float]:
        return (float(self.cores_per_node), self.cpu_freq_ghz, self.ram_gb)


@dataclass(frozen=True)
class ServiceLatencyModel:
    """Latencies of the cloud service path, used for the Fig. 5 breakdown.

    Values default to the measurements reported in the paper: task dispatch to
    the remote endpoint is dominated by the WAN round-trip (~174 ms), result
    polling adds ~117 ms, the endpoint adds a small execution overhead
    (~62 ms) and the submission call itself costs a few milliseconds.
    """

    submit_latency_s: float = 0.004
    dispatch_latency_s: float = 0.174
    result_poll_latency_s: float = 0.117
    endpoint_overhead_s: float = 0.062
    status_refresh_interval_s: float = 60.0

    def __post_init__(self) -> None:
        for name in (
            "submit_latency_s",
            "dispatch_latency_s",
            "result_poll_latency_s",
            "endpoint_overhead_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.status_refresh_interval_s <= 0:
            raise ValueError("status_refresh_interval_s must be positive")


@dataclass
class TaskExecutionRequest:
    """Everything an endpoint needs to run one task.

    In simulation mode the endpoint uses ``sim_duration_s`` /
    ``sim_output_mb`` (pre-sampled by the fabric from the function's
    :class:`~repro.core.functions.SimProfile`); in local mode it calls
    ``callable_`` with the resolved arguments.
    """

    task_id: str
    function_name: str
    #: Number of workers the task occupies (1 for ordinary functions).
    cores: int = 1
    #: Total input data size in MB (feature for the profilers).
    input_mb: float = 0.0
    #: Simulated execution duration on a reference-speed worker; the endpoint
    #: divides by its hardware speed factor.  ``None`` in local mode.
    sim_duration_s: Optional[float] = None
    #: Simulated output data volume in MB.
    sim_output_mb: float = 0.0
    #: Per-attempt failure probability carried from the function's
    #: :class:`~repro.core.functions.SimProfile`; combined with the
    #: endpoint-level injection rate at completion time.
    sim_failure_rate: float = 0.0
    #: Real callable and arguments (local mode only).
    callable_: Optional[Callable[..., Any]] = None
    args: tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.input_mb < 0 or self.sim_output_mb < 0:
            raise ValueError("data sizes must be non-negative")
        if self.sim_duration_s is not None and self.sim_duration_s < 0:
            raise ValueError("sim_duration_s must be non-negative")
        if not 0.0 <= self.sim_failure_rate <= 1.0:
            raise ValueError("sim_failure_rate must be within [0, 1]")


@dataclass
class TaskExecutionRecord:
    """Outcome of one execution attempt, streamed to the task monitor."""

    task_id: str
    endpoint: str
    function_name: str
    success: bool
    submitted_at: float
    started_at: float
    completed_at: float
    input_mb: float = 0.0
    output_mb: float = 0.0
    result: Any = None
    error: Optional[str] = None
    worker_id: Optional[str] = None
    #: Hardware features of the endpoint that ran the task (profiler inputs).
    cores_per_node: int = 1
    cpu_freq_ghz: float = 1.0
    ram_gb: float = 1.0

    @property
    def execution_time_s(self) -> float:
        return self.completed_at - self.started_at

    @property
    def queue_time_s(self) -> float:
        return self.started_at - self.submitted_at
