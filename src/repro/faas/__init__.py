"""Federated FaaS execution fabric (the funcX substrate).

The paper builds UniFaaS on funcX: endpoints deployed on arbitrary computing
resources execute function tasks in a FaaS manner, and a cloud-hosted web
service brokers task submission, result retrieval and (periodically updated)
endpoint status.  None of that infrastructure is available offline, so this
package implements the substrate:

* :mod:`repro.faas.types` — execution requests/records and endpoint status
  snapshots exchanged between layers.
* :mod:`repro.faas.endpoint` — simulated endpoints with elastic worker pools,
  batch-queue provisioning delays and dynamic capacity schedules.
* :mod:`repro.faas.service` — the web-service facade with *stale* status
  (refreshed only periodically, motivating UniFaaS's local mocking).
* :mod:`repro.faas.client` — the client used by the task executor (batched
  submission, result polling).
* :mod:`repro.faas.local` — endpoints that really execute Python functions in
  thread pools (local mode used by the examples).
* :mod:`repro.faas.fabric` — the :class:`ExecutionFabric` abstraction that
  the UniFaaS engine programs against.
"""

from repro.faas.types import (
    EndpointStatus,
    ServiceLatencyModel,
    TaskExecutionRecord,
    TaskExecutionRequest,
)
from repro.faas.endpoint import CapacityChange, SimulatedEndpoint
from repro.faas.service import FederatedFaaSService
from repro.faas.client import FaaSClient
from repro.faas.fabric import ExecutionFabric, SimulatedFabric
from repro.faas.local import LocalEndpoint, LocalFabric

__all__ = [
    "CapacityChange",
    "EndpointStatus",
    "ExecutionFabric",
    "FaaSClient",
    "FederatedFaaSService",
    "LocalEndpoint",
    "LocalFabric",
    "ServiceLatencyModel",
    "SimulatedEndpoint",
    "SimulatedFabric",
    "TaskExecutionRecord",
    "TaskExecutionRequest",
]
