"""Simulated funcX-style endpoints.

An endpoint represents one computing resource (cluster) integrated into the
federated fabric.  It elastically manages a pool of workers, queues the tasks
dispatched to it, executes them (in simulation: for a sampled duration scaled
by the cluster's hardware speed), and reports status snapshots.

The endpoint reproduces the behaviours UniFaaS depends on:

* **elasticity** — more workers are provisioned (in node-sized units, after a
  batch-queue delay) when tasks outnumber workers, and idle workers are
  released after an idle interval (§IV-H, Fig. 7);
* **dynamic capacity** — scheduled capacity changes model other users and
  downtimes taking resources away or returning them (§VI-B, Figs. 12–13);
* **failure injection** — tasks can fail with a configurable probability to
  exercise the fault-tolerance path (§IV-G).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from collections import deque

import numpy as np

from repro.core.exceptions import EndpointError
from repro.faas.types import EndpointStatus, TaskExecutionRecord, TaskExecutionRequest
from repro.sim.hardware import ClusterSpec
from repro.sim.kernel import SimulationKernel

__all__ = ["CapacityChange", "SimulatedEndpoint"]

CompletionCallback = Callable[[TaskExecutionRecord], None]


@dataclass(frozen=True)
class CapacityChange:
    """A scheduled change of an endpoint's available capacity.

    ``delta_workers`` is positive when resources are added (e.g. another
    user's allocation ends) and negative when they are taken away.
    """

    at_time_s: float
    delta_workers: int

    def __post_init__(self) -> None:
        if self.at_time_s < 0:
            raise ValueError("at_time_s must be non-negative")
        if self.delta_workers == 0:
            raise ValueError("delta_workers must be non-zero")


@dataclass
class _RunningTask:
    request: TaskExecutionRequest
    submitted_at: float
    started_at: float
    worker_id: str


class SimulatedEndpoint:
    """Discrete-event model of a funcX endpoint deployed on one cluster."""

    def __init__(
        self,
        name: str,
        cluster: ClusterSpec,
        kernel: SimulationKernel,
        *,
        rng: Optional[np.random.Generator] = None,
        initial_workers: int = 0,
        max_workers: Optional[int] = None,
        auto_scale: bool = True,
        idle_shutdown_s: float = 30.0,
        scale_check_interval_s: float = 10.0,
        execution_overhead_s: float = 0.0,
        failure_rate: float = 0.0,
        duration_jitter: float = 0.0,
    ) -> None:
        if initial_workers < 0:
            raise EndpointError(f"initial_workers must be non-negative, got {initial_workers}")
        self.name = name
        self.cluster = cluster
        self.kernel = kernel
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.max_workers = max_workers if max_workers is not None else cluster.max_workers
        if self.max_workers <= 0:
            raise EndpointError("max_workers must be positive")
        if initial_workers > self.max_workers:
            raise EndpointError(
                f"initial_workers ({initial_workers}) exceeds max_workers ({self.max_workers})"
            )
        self.auto_scale = auto_scale
        self.idle_shutdown_s = idle_shutdown_s
        self.execution_overhead_s = execution_overhead_s
        self.failure_rate = failure_rate
        self.duration_jitter = duration_jitter

        # Worker accounting.  Workers are modelled as counters; individual
        # worker identities only matter for execution records.
        self._active_workers = initial_workers
        self._busy_workers = 0
        self._provisioning_workers = 0
        self._pending_removals = 0

        self._queue: Deque[tuple[TaskExecutionRequest, float]] = deque()
        self._running: Dict[str, _RunningTask] = {}
        self._completion_callbacks: List[CompletionCallback] = []

        self._last_activity_at = kernel.now()
        self._worker_seq = 0

        # Statistics used by the metrics layer and tests.
        self.completed_count = 0
        self.failed_count = 0
        self.busy_core_seconds = 0.0
        self.dispatched_count = 0

        if auto_scale and scale_check_interval_s > 0:
            # Daemon: idle-pool housekeeping must not keep the simulation alive.
            kernel.schedule_periodic(
                scale_check_interval_s, self._idle_scale_in_check, daemon=True
            )

    # ------------------------------------------------------------ properties
    @property
    def active_workers(self) -> int:
        """Workers currently provisioned (busy + idle)."""
        return self._active_workers

    @property
    def busy_workers(self) -> int:
        return self._busy_workers

    @property
    def idle_workers(self) -> int:
        return self._active_workers - self._busy_workers

    @property
    def queued_tasks(self) -> int:
        """Tasks dispatched to this endpoint but not yet running."""
        return len(self._queue)

    @property
    def running_tasks(self) -> int:
        return len(self._running)

    @property
    def speed_factor(self) -> float:
        return self.cluster.speed_factor

    @property
    def utilization(self) -> float:
        """Fraction of provisioned workers currently busy."""
        if self._active_workers == 0:
            return 0.0
        return self._busy_workers / self._active_workers

    # --------------------------------------------------------------- control
    def add_completion_callback(self, callback: CompletionCallback) -> None:
        self._completion_callbacks.append(callback)

    def status(self) -> EndpointStatus:
        """Ground-truth status snapshot (the service caches these)."""
        hw = self.cluster.hardware
        return EndpointStatus(
            endpoint=self.name,
            online=True,
            active_workers=self._active_workers,
            busy_workers=self._busy_workers,
            idle_workers=self.idle_workers,
            pending_tasks=len(self._queue),
            max_workers=self.max_workers,
            cores_per_node=hw.cores_per_node,
            cpu_freq_ghz=hw.cpu_freq_ghz,
            ram_gb=hw.ram_gb,
            as_of=self.kernel.now(),
        )

    # ------------------------------------------------------------ submission
    def submit(self, request: TaskExecutionRequest, submitted_at: Optional[float] = None) -> None:
        """Accept a task dispatched to this endpoint."""
        if request.sim_duration_s is None:
            raise EndpointError(
                f"simulated endpoint {self.name} received a request without sim_duration_s"
            )
        when = self.kernel.now() if submitted_at is None else submitted_at
        self._queue.append((request, when))
        self._last_activity_at = self.kernel.now()
        self.dispatched_count += 1
        if self.auto_scale:
            self._maybe_scale_out()
        self._start_queued_tasks()

    # --------------------------------------------------------------- scaling
    def request_workers(self, count: int) -> int:
        """Provision up to ``count`` additional workers (node-granular).

        Returns the number of workers actually requested; provisioning
        completes after the cluster's batch-queue delay.
        """
        if count <= 0:
            return 0
        headroom = self.max_workers - (
            self._active_workers + self._provisioning_workers
        )
        if headroom <= 0:
            return 0
        per_node = self.cluster.workers_per_node
        nodes = max(1, -(-min(count, headroom) // per_node))  # ceil division
        workers = min(nodes * per_node, headroom)
        if workers <= 0:
            return 0
        self._provisioning_workers += workers
        delay = self._sample_queue_delay()
        self.kernel.schedule(delay, self._provision_arrived, workers, label=f"{self.name}-provision")
        return workers

    def release_idle_workers(self, count: Optional[int] = None) -> int:
        """Immediately release up to ``count`` idle workers (all if ``None``)."""
        releasable = self.idle_workers
        to_release = releasable if count is None else min(count, releasable)
        if to_release <= 0:
            return 0
        self._active_workers -= to_release
        return to_release

    def apply_capacity_change(self, delta_workers: int) -> None:
        """Apply a capacity change right now (used by the schedule below)."""
        if delta_workers > 0:
            self.max_workers = max(self.max_workers, self._active_workers + delta_workers)
            self._active_workers += delta_workers
            self._start_queued_tasks()
        else:
            removal = -delta_workers
            self.max_workers = max(1, self.max_workers - removal)
            idle_removed = self.release_idle_workers(removal)
            # Busy workers drain: they finish their current task and are then
            # retired instead of returning to the idle pool.
            self._pending_removals += removal - idle_removed

    def set_capacity_schedule(self, changes: List[CapacityChange]) -> None:
        """Schedule future capacity changes on the simulation kernel."""
        for change in changes:
            self.kernel.schedule_at(
                change.at_time_s,
                self.apply_capacity_change,
                change.delta_workers,
                label=f"{self.name}-capacity",
            )

    # -------------------------------------------------------------- internal
    def _sample_queue_delay(self) -> float:
        spec = self.cluster
        if spec.queue_delay_mean_s <= 0:
            return 0.0
        delay = self.rng.normal(spec.queue_delay_mean_s, spec.queue_delay_std_s)
        return float(max(0.0, delay))

    def _provision_arrived(self, workers: int) -> None:
        self._provisioning_workers -= workers
        grant = min(workers, self.max_workers - self._active_workers)
        if grant > 0:
            self._active_workers += grant
            self._start_queued_tasks()

    def _maybe_scale_out(self) -> None:
        demand = len(self._queue) - self.idle_workers - self._provisioning_workers
        if demand > 0:
            self.request_workers(demand)

    def _idle_scale_in_check(self) -> None:
        if not self.auto_scale:
            return
        if self._queue or self._busy_workers:
            return
        if self.idle_workers == 0:
            return
        if self.kernel.now() - self._last_activity_at >= self.idle_shutdown_s:
            self.release_idle_workers()

    def _start_queued_tasks(self) -> None:
        while self._queue:
            request, submitted_at = self._queue[0]
            if self.idle_workers < request.cores:
                break
            self._queue.popleft()
            self._busy_workers += request.cores
            self._worker_seq += 1
            worker_id = f"{self.name}-worker-{self._worker_seq}"
            started_at = self.kernel.now()
            running = _RunningTask(
                request=request,
                submitted_at=submitted_at,
                started_at=started_at,
                worker_id=worker_id,
            )
            self._running[request.task_id] = running
            duration = self._execution_duration(request)
            self.kernel.schedule(
                duration, self._finish_task, request.task_id, label=f"{self.name}-exec"
            )

    def _execution_duration(self, request: TaskExecutionRequest) -> float:
        duration = request.sim_duration_s / self.speed_factor
        if self.duration_jitter > 0:
            duration *= float(self.rng.lognormal(0.0, self.duration_jitter))
        return self.execution_overhead_s + duration

    def _finish_task(self, task_id: str) -> None:
        running = self._running.pop(task_id)
        request = running.request
        self._busy_workers -= request.cores
        self._last_activity_at = self.kernel.now()

        # Retire workers earmarked for removal by a capacity decrease.
        if self._pending_removals > 0:
            retire = min(self._pending_removals, request.cores, self.idle_workers)
            self._active_workers -= retire
            self._pending_removals -= retire

        failed = self.failure_rate > 0 and bool(self.rng.random() < self.failure_rate)
        completed_at = self.kernel.now()
        self.busy_core_seconds += (completed_at - running.started_at) * request.cores
        if failed:
            self.failed_count += 1
        else:
            self.completed_count += 1

        hw = self.cluster.hardware
        record = TaskExecutionRecord(
            task_id=task_id,
            endpoint=self.name,
            function_name=request.function_name,
            success=not failed,
            submitted_at=running.submitted_at,
            started_at=running.started_at,
            completed_at=completed_at,
            input_mb=request.input_mb,
            output_mb=request.sim_output_mb if not failed else 0.0,
            result=None,
            error="injected task failure" if failed else None,
            worker_id=running.worker_id,
            cores_per_node=hw.cores_per_node,
            cpu_freq_ghz=hw.cpu_freq_ghz,
            ram_gb=hw.ram_gb,
        )
        for callback in self._completion_callbacks:
            callback(record)
        self._start_queued_tasks()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedEndpoint({self.name!r}, active={self._active_workers}, "
            f"busy={self._busy_workers}, queued={len(self._queue)})"
        )
