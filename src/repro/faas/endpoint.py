"""Simulated funcX-style endpoints.

An endpoint represents one computing resource (cluster) integrated into the
federated fabric.  It elastically manages a pool of workers, queues the tasks
dispatched to it, executes them (in simulation: for a sampled duration scaled
by the cluster's hardware speed), and reports status snapshots.

The endpoint reproduces the behaviours UniFaaS depends on:

* **elasticity** — more workers are provisioned (in node-sized units, after a
  batch-queue delay) when tasks outnumber workers, and idle workers are
  released after an idle interval (§IV-H, Fig. 7);
* **dynamic capacity** — scheduled capacity changes model other users and
  downtimes taking resources away or returning them (§VI-B, Figs. 12–13);
* **failure injection** — tasks can fail with a configurable probability to
  exercise the fault-tolerance path (§IV-G);
* **lifecycle dynamics** — an endpoint can :meth:`crash` (failing its queued
  and running tasks) and later :meth:`rejoin` with a fresh, cold worker pool,
  and tasks starting inside a cold-start window pay a startup penalty.  The
  scenario subsystem drives these to model endpoints leaving and joining the
  federation mid-workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from collections import deque

import numpy as np

from repro.core.exceptions import EndpointError
from repro.faas.types import EndpointStatus, TaskExecutionRecord, TaskExecutionRequest
from repro.sim.hardware import ClusterSpec
from repro.sim.kernel import EventHandle, SimulationKernel

__all__ = ["CapacityChange", "SimulatedEndpoint"]

CompletionCallback = Callable[[TaskExecutionRecord], None]


@dataclass(frozen=True)
class CapacityChange:
    """A scheduled change of an endpoint's available capacity.

    ``delta_workers`` is positive when resources are added (e.g. another
    user's allocation ends) and negative when they are taken away.
    """

    at_time_s: float
    delta_workers: int

    def __post_init__(self) -> None:
        if self.at_time_s < 0:
            raise ValueError("at_time_s must be non-negative")
        if self.delta_workers == 0:
            raise ValueError("delta_workers must be non-zero")


@dataclass
class _RunningTask:
    request: TaskExecutionRequest
    submitted_at: float
    started_at: float
    worker_id: str
    #: Kernel event that will complete the task; cancelled by a crash.
    finish_handle: Optional[EventHandle] = None


class SimulatedEndpoint:
    """Discrete-event model of a funcX endpoint deployed on one cluster."""

    def __init__(
        self,
        name: str,
        cluster: ClusterSpec,
        kernel: SimulationKernel,
        *,
        rng: Optional[np.random.Generator] = None,
        initial_workers: int = 0,
        max_workers: Optional[int] = None,
        auto_scale: bool = True,
        idle_shutdown_s: float = 30.0,
        scale_check_interval_s: float = 10.0,
        execution_overhead_s: float = 0.0,
        failure_rate: float = 0.0,
        duration_jitter: float = 0.0,
        cold_start_penalty_s: float = 0.0,
    ) -> None:
        if initial_workers < 0:
            raise EndpointError(f"initial_workers must be non-negative, got {initial_workers}")
        self.name = name
        self.cluster = cluster
        self.kernel = kernel
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.max_workers = max_workers if max_workers is not None else cluster.max_workers
        if self.max_workers <= 0:
            raise EndpointError("max_workers must be positive")
        if initial_workers > self.max_workers:
            raise EndpointError(
                f"initial_workers ({initial_workers}) exceeds max_workers ({self.max_workers})"
            )
        self.auto_scale = auto_scale
        self.idle_shutdown_s = idle_shutdown_s
        self.execution_overhead_s = execution_overhead_s
        self.failure_rate = failure_rate
        self.duration_jitter = duration_jitter
        #: Extra seconds a task pays when it starts inside a cold window.
        self.cold_start_penalty_s = cold_start_penalty_s

        # Worker accounting.  Workers are modelled as counters; individual
        # worker identities only matter for execution records.
        self._active_workers = initial_workers
        self._busy_workers = 0
        self._provisioning_workers = 0
        self._pending_removals = 0

        # Lifecycle dynamics.
        self._online = True
        self._cold_until = 0.0
        self.crash_count = 0
        #: Bumped by every crash; provisioning batches carry the epoch they
        #: were requested in, so allocations from before a crash cannot land.
        self._lifecycle_epoch = 0

        self._queue: Deque[tuple[TaskExecutionRequest, float]] = deque()
        self._running: Dict[str, _RunningTask] = {}
        self._completion_callbacks: List[CompletionCallback] = []

        self._last_activity_at = kernel.now()
        self._worker_seq = 0

        # Statistics used by the metrics layer and tests.
        self.completed_count = 0
        self.failed_count = 0
        self.busy_core_seconds = 0.0
        self.dispatched_count = 0

        if auto_scale and scale_check_interval_s > 0:
            # Daemon: idle-pool housekeeping must not keep the simulation alive.
            kernel.schedule_periodic(
                scale_check_interval_s, self._idle_scale_in_check, daemon=True
            )

    # ------------------------------------------------------------ properties
    @property
    def active_workers(self) -> int:
        """Workers currently provisioned (busy + idle)."""
        return self._active_workers

    @property
    def busy_workers(self) -> int:
        return self._busy_workers

    @property
    def idle_workers(self) -> int:
        return self._active_workers - self._busy_workers

    @property
    def queued_tasks(self) -> int:
        """Tasks dispatched to this endpoint but not yet running."""
        return len(self._queue)

    @property
    def running_tasks(self) -> int:
        return len(self._running)

    @property
    def speed_factor(self) -> float:
        return self.cluster.speed_factor

    @property
    def online(self) -> bool:
        return self._online

    @property
    def cold(self) -> bool:
        """True while tasks starting here pay the cold-start penalty."""
        return self.kernel.now() < self._cold_until

    @property
    def utilization(self) -> float:
        """Fraction of provisioned workers currently busy."""
        if self._active_workers == 0:
            return 0.0
        return self._busy_workers / self._active_workers

    # --------------------------------------------------------------- control
    def add_completion_callback(self, callback: CompletionCallback) -> None:
        self._completion_callbacks.append(callback)

    def status(self) -> EndpointStatus:
        """Ground-truth status snapshot (the service caches these)."""
        hw = self.cluster.hardware
        return EndpointStatus(
            endpoint=self.name,
            online=self._online,
            active_workers=self._active_workers,
            busy_workers=self._busy_workers,
            idle_workers=self.idle_workers,
            pending_tasks=len(self._queue),
            max_workers=self.max_workers,
            cores_per_node=hw.cores_per_node,
            cpu_freq_ghz=hw.cpu_freq_ghz,
            ram_gb=hw.ram_gb,
            as_of=self.kernel.now(),
        )

    # ------------------------------------------------------------ submission
    def submit(self, request: TaskExecutionRequest, submitted_at: Optional[float] = None) -> None:
        """Accept a task dispatched to this endpoint.

        Submissions to an offline (crashed) endpoint fail immediately: the
        resulting failure record flows back through the service so the
        client's fault-tolerance ladder (§IV-G) can reassign the task.
        """
        if request.sim_duration_s is None:
            raise EndpointError(
                f"simulated endpoint {self.name} received a request without sim_duration_s"
            )
        when = self.kernel.now() if submitted_at is None else submitted_at
        if not self._online:
            self.dispatched_count += 1
            self._fail_request(request, when, error="endpoint offline")
            return
        self._queue.append((request, when))
        self._last_activity_at = self.kernel.now()
        self.dispatched_count += 1
        if self.auto_scale:
            self._maybe_scale_out()
        self._start_queued_tasks()

    # --------------------------------------------------------------- scaling
    def request_workers(self, count: int) -> int:
        """Provision up to ``count`` additional workers (node-granular).

        Returns the number of workers actually requested; provisioning
        completes after the cluster's batch-queue delay.
        """
        if count <= 0 or not self._online:
            return 0
        headroom = self.max_workers - (
            self._active_workers + self._provisioning_workers
        )
        if headroom <= 0:
            return 0
        per_node = self.cluster.workers_per_node
        nodes = max(1, -(-min(count, headroom) // per_node))  # ceil division
        workers = min(nodes * per_node, headroom)
        if workers <= 0:
            return 0
        self._provisioning_workers += workers
        delay = self._sample_queue_delay()
        self.kernel.schedule(
            delay,
            self._provision_arrived,
            workers,
            self._lifecycle_epoch,
            label=f"{self.name}-provision",
        )
        return workers

    def release_idle_workers(self, count: Optional[int] = None) -> int:
        """Immediately release up to ``count`` idle workers (all if ``None``)."""
        releasable = self.idle_workers
        to_release = releasable if count is None else min(count, releasable)
        if to_release <= 0:
            return 0
        self._active_workers -= to_release
        return to_release

    def apply_capacity_change(self, delta_workers: int) -> None:
        """Apply a capacity change right now (used by the schedule below)."""
        if not self._online:
            # The change addressed an endpoint process that has since died;
            # like in-flight provisioning, it is lost with the crash.
            return
        if delta_workers > 0:
            self.max_workers = max(self.max_workers, self._active_workers + delta_workers)
            self._active_workers += delta_workers
            self._start_queued_tasks()
        else:
            removal = -delta_workers
            self.max_workers = max(1, self.max_workers - removal)
            idle_removed = self.release_idle_workers(removal)
            # Busy workers drain: they finish their current task and are then
            # retired instead of returning to the idle pool.
            self._pending_removals += removal - idle_removed

    def set_capacity_schedule(self, changes: List[CapacityChange]) -> None:
        """Schedule future capacity changes on the simulation kernel."""
        for change in changes:
            self.kernel.schedule_at(
                change.at_time_s,
                self.apply_capacity_change,
                change.delta_workers,
                label=f"{self.name}-capacity",
            )

    # ------------------------------------------------------------- lifecycle
    def crash(self) -> int:
        """Go offline abruptly, as a real endpoint process dying would.

        Every queued and running task fails immediately (their failure
        records flow back through the service's result path), the worker
        pool is lost, and in-flight provisioning is voided.  Returns the
        number of tasks the crash failed.
        """
        if not self._online:
            return 0
        self._online = False
        self.crash_count += 1
        self._lifecycle_epoch += 1
        now = self.kernel.now()
        lost = 0
        for running in list(self._running.values()):
            if running.finish_handle is not None:
                running.finish_handle.cancel()
            self._fail_request(running.request, running.submitted_at,
                               started_at=running.started_at, error="endpoint crashed")
            lost += 1
        self._running.clear()
        while self._queue:
            request, submitted_at = self._queue.popleft()
            self._fail_request(request, submitted_at, error="endpoint crashed")
            lost += 1
        self._active_workers = 0
        self._busy_workers = 0
        self._provisioning_workers = 0
        self._pending_removals = 0
        self._last_activity_at = now
        return lost

    def rejoin(self, workers: Optional[int] = None) -> None:
        """Come back online with a fresh pool of ``workers`` cold workers."""
        if self._online:
            return
        self._online = True
        grant = self.max_workers if workers is None else min(workers, self.max_workers)
        self._active_workers = max(0, grant)
        self._busy_workers = 0
        self._last_activity_at = self.kernel.now()
        if self.cold_start_penalty_s > 0:
            # A rejoined pool is cold until its first tasks have warmed it up.
            self.begin_cold_window(self.cold_start_penalty_s * 10.0)
        self._start_queued_tasks()

    def begin_cold_window(self, duration_s: float, penalty_s: Optional[float] = None) -> None:
        """Tasks starting within ``duration_s`` from now pay the cold penalty."""
        if penalty_s is not None:
            self.cold_start_penalty_s = penalty_s
        self._cold_until = max(self._cold_until, self.kernel.now() + duration_s)

    # -------------------------------------------------------------- internal
    def _sample_queue_delay(self) -> float:
        spec = self.cluster
        if spec.queue_delay_mean_s <= 0:
            return 0.0
        delay = self.rng.normal(spec.queue_delay_mean_s, spec.queue_delay_std_s)
        return float(max(0.0, delay))

    def _provision_arrived(self, workers: int, epoch: int = 0) -> None:
        if epoch != self._lifecycle_epoch:
            # The endpoint crashed after this batch was requested (even if it
            # has since rejoined): the allocation died with the old process.
            return
        self._provisioning_workers = max(0, self._provisioning_workers - workers)
        if not self._online:
            return
        grant = min(workers, self.max_workers - self._active_workers)
        if grant > 0:
            self._active_workers += grant
            self._start_queued_tasks()

    def _maybe_scale_out(self) -> None:
        demand = len(self._queue) - self.idle_workers - self._provisioning_workers
        if demand > 0:
            self.request_workers(demand)

    def _idle_scale_in_check(self) -> None:
        if not self.auto_scale:
            return
        if self._queue or self._busy_workers:
            return
        if self.idle_workers == 0:
            return
        if self.kernel.now() - self._last_activity_at >= self.idle_shutdown_s:
            self.release_idle_workers()

    def _start_queued_tasks(self) -> None:
        if not self._online:
            return
        while self._queue:
            request, submitted_at = self._queue[0]
            if self.idle_workers < request.cores:
                break
            self._queue.popleft()
            self._busy_workers += request.cores
            self._worker_seq += 1
            worker_id = f"{self.name}-worker-{self._worker_seq}"
            started_at = self.kernel.now()
            running = _RunningTask(
                request=request,
                submitted_at=submitted_at,
                started_at=started_at,
                worker_id=worker_id,
            )
            self._running[request.task_id] = running
            duration = self._execution_duration(request)
            running.finish_handle = self.kernel.schedule(
                duration, self._finish_task, request.task_id, label=f"{self.name}-exec"
            )

    def _execution_duration(self, request: TaskExecutionRequest) -> float:
        duration = request.sim_duration_s / self.speed_factor
        if self.duration_jitter > 0:
            duration *= float(self.rng.lognormal(0.0, self.duration_jitter))
        duration = self.execution_overhead_s + duration
        if self.cold_start_penalty_s > 0 and self.cold:
            duration += self.cold_start_penalty_s
        return duration

    def _fail_request(
        self,
        request: TaskExecutionRequest,
        submitted_at: float,
        *,
        started_at: Optional[float] = None,
        error: str = "endpoint offline",
    ) -> None:
        """Emit a failure record for a task the endpoint could not finish."""
        now = self.kernel.now()
        self.failed_count += 1
        hw = self.cluster.hardware
        record = TaskExecutionRecord(
            task_id=request.task_id,
            endpoint=self.name,
            function_name=request.function_name,
            success=False,
            submitted_at=submitted_at,
            started_at=now if started_at is None else started_at,
            completed_at=now,
            input_mb=request.input_mb,
            output_mb=0.0,
            result=None,
            error=error,
            worker_id=None,
            cores_per_node=hw.cores_per_node,
            cpu_freq_ghz=hw.cpu_freq_ghz,
            ram_gb=hw.ram_gb,
        )
        for callback in self._completion_callbacks:
            callback(record)

    def _finish_task(self, task_id: str) -> None:
        running = self._running.pop(task_id)
        request = running.request
        self._busy_workers -= request.cores
        self._last_activity_at = self.kernel.now()

        # Retire workers earmarked for removal by a capacity decrease.
        if self._pending_removals > 0:
            retire = min(self._pending_removals, request.cores, self.idle_workers)
            self._active_workers -= retire
            self._pending_removals -= retire

        # Per-function poison (SimProfile.failure_rate) combines with the
        # endpoint-level injection rate; the RNG is only consumed when some
        # rate is set, so zero-rate runs keep their exact random streams.
        rate = max(self.failure_rate, request.sim_failure_rate)
        failed = rate > 0 and bool(self.rng.random() < rate)
        completed_at = self.kernel.now()
        self.busy_core_seconds += (completed_at - running.started_at) * request.cores
        if failed:
            self.failed_count += 1
        else:
            self.completed_count += 1

        hw = self.cluster.hardware
        record = TaskExecutionRecord(
            task_id=task_id,
            endpoint=self.name,
            function_name=request.function_name,
            success=not failed,
            submitted_at=running.submitted_at,
            started_at=running.started_at,
            completed_at=completed_at,
            input_mb=request.input_mb,
            output_mb=request.sim_output_mb if not failed else 0.0,
            result=None,
            error="injected task failure" if failed else None,
            worker_id=running.worker_id,
            cores_per_node=hw.cores_per_node,
            cpu_freq_ghz=hw.cpu_freq_ghz,
            ram_gb=hw.ram_gb,
        )
        for callback in self._completion_callbacks:
            callback(record)
        self._start_queued_tasks()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedEndpoint({self.name!r}, active={self._active_workers}, "
            f"busy={self._busy_workers}, queued={len(self._queue)})"
        )
