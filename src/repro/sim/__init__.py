"""Simulation substrate for the UniFaaS reproduction.

This subpackage provides the infrastructure the paper's testbed provided in
hardware: a notion of time (:mod:`repro.sim.kernel`), heterogeneous cluster
hardware (:mod:`repro.sim.hardware`), and a wide-area network connecting the
clusters (:mod:`repro.sim.network`).  Experiments run on a discrete-event
simulation clock so that hour-long federated workflows complete in seconds of
wall-clock time while preserving the timing behaviour the schedulers react to.
"""

from repro.sim.kernel import Clock, EventHandle, SimClock, SimulationKernel, WallClock
from repro.sim.hardware import (
    ClusterSpec,
    HardwareSpec,
    DEPT_CLUSTER,
    LAB_CLUSTER,
    QIMING,
    TAIYI,
    WORKSTATION,
    testbed_clusters,
)
from repro.sim.network import LinkSpec, NetworkModel, TransferEstimate
from repro.sim.rng import RngRegistry

__all__ = [
    "Clock",
    "ClusterSpec",
    "EventHandle",
    "HardwareSpec",
    "LinkSpec",
    "NetworkModel",
    "RngRegistry",
    "SimClock",
    "SimulationKernel",
    "TransferEstimate",
    "WallClock",
    "DEPT_CLUSTER",
    "LAB_CLUSTER",
    "QIMING",
    "TAIYI",
    "WORKSTATION",
    "testbed_clusters",
]
