"""Wide-area network model connecting the federated endpoints.

The paper relies on Globus and rsync for wide-area transfers and observes
(citing Liu et al., HPDC'17) that transfer time across federated CI is
"relatively predictable" — primarily a function of data size and the network
conditions between endpoints.  This module provides that substrate:

* a pairwise :class:`LinkSpec` (bandwidth, latency, jitter, failure rate),
* per-mechanism efficiency (Globus/GridFTP sustains a higher fraction of the
  raw bandwidth than single-stream rsync),
* concurrency effects — a link's bandwidth is shared by the transfers the
  data manager runs concurrently on it, and
* deterministic sampling of actual transfer durations for the simulator.

The transfer profiler (``repro.profiling.transfer``) never reads this model
directly; it learns from observed transfers exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

__all__ = ["LinkSpec", "NetworkModel", "TransferEstimate"]

#: Fraction of raw link bandwidth each mechanism sustains in practice.
MECHANISM_EFFICIENCY: Mapping[str, float] = {
    "globus": 0.9,
    "rsync": 0.6,
    "local": 1.0,
}

#: Fixed per-transfer startup cost (seconds) per mechanism: Globus transfers
#: go through the transfer service and pay a noticeable setup cost, rsync
#: pays an ssh handshake, local copies are immediate.
MECHANISM_STARTUP_S: Mapping[str, float] = {
    "globus": 2.0,
    "rsync": 0.5,
    "local": 0.0,
}


@dataclass(frozen=True)
class LinkSpec:
    """Characteristics of the network path between two endpoints."""

    #: Sustainable raw bandwidth in MB/s.
    bandwidth_mbps: float
    #: One-way latency in seconds.
    latency_s: float = 0.05
    #: Multiplicative jitter std-dev applied to sampled durations.
    jitter: float = 0.05
    #: Probability that an individual transfer attempt fails.
    failure_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


@dataclass(frozen=True)
class TransferEstimate:
    """Ground-truth duration estimate produced by the network model."""

    duration_s: float
    bandwidth_mbps: float
    startup_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("duration must be non-negative")


class NetworkModel:
    """Pairwise bandwidth/latency matrix with concurrency-aware sampling.

    Parameters
    ----------
    links:
        Mapping from ``(src, dst)`` endpoint-name pairs to :class:`LinkSpec`.
        Links are treated as symmetric unless both directions are given.
    default_link:
        Link used for endpoint pairs not listed explicitly.
    seed:
        Seed for the jitter / failure sampling stream.
    """

    def __init__(
        self,
        links: Optional[Mapping[Tuple[str, str], LinkSpec]] = None,
        default_link: Optional[LinkSpec] = None,
        seed: int = 0,
    ) -> None:
        self._links: Dict[Tuple[str, str], LinkSpec] = dict(links or {})
        self._default = default_link or LinkSpec(bandwidth_mbps=100.0, latency_s=0.05)
        self._rng = np.random.default_rng(seed)
        #: Number of in-flight transfers per (src, dst) pair, maintained by the
        #: data manager so that concurrent transfers share the link.
        self._active: Dict[Tuple[str, str], int] = {}
        #: Fabric-wide bandwidth multiplier; a degradation window (scenario
        #: dynamics) drops it below 1.0 and restores it afterwards.  Transfers
        #: sample their duration at start time, so only transfers starting
        #: inside the window are slowed — like a real WAN brownout.
        self._bandwidth_scale = 1.0

    # ----------------------------------------------------------------- links
    def set_link(self, src: str, dst: str, link: LinkSpec, symmetric: bool = True) -> None:
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def link(self, src: str, dst: str) -> LinkSpec:
        if src == dst:
            # Intra-endpoint "transfers" are shared-filesystem accesses.
            return LinkSpec(bandwidth_mbps=2000.0, latency_s=0.0, jitter=0.0)
        return self._links.get((src, dst), self._default)

    def endpoints(self) -> Iterable[str]:
        seen = set()
        for a, b in self._links:
            seen.add(a)
            seen.add(b)
        return sorted(seen)

    # ----------------------------------------------------- concurrency state
    def register_transfer_start(self, src: str, dst: str) -> None:
        key = (src, dst)
        self._active[key] = self._active.get(key, 0) + 1

    def register_transfer_end(self, src: str, dst: str) -> None:
        key = (src, dst)
        current = self._active.get(key, 0)
        if current <= 1:
            self._active.pop(key, None)
        else:
            self._active[key] = current - 1

    def active_transfers(self, src: str, dst: str) -> int:
        return self._active.get((src, dst), 0)

    # ------------------------------------------------------------ degradation
    @property
    def bandwidth_scale(self) -> float:
        return self._bandwidth_scale

    def set_bandwidth_scale(self, scale: float) -> None:
        """Scale every link's bandwidth (1.0 = nominal, <1.0 = degraded)."""
        if scale <= 0:
            raise ValueError("bandwidth scale must be positive")
        self._bandwidth_scale = scale

    # -------------------------------------------------------------- modeling
    def effective_bandwidth(
        self, src: str, dst: str, mechanism: str = "globus", concurrency: Optional[int] = None
    ) -> float:
        """Bandwidth (MB/s) one transfer gets given current link sharing."""
        link = self.link(src, dst)
        efficiency = MECHANISM_EFFICIENCY.get(mechanism, 0.8)
        sharing = max(1, concurrency if concurrency is not None else self.active_transfers(src, dst))
        return link.bandwidth_mbps * self._bandwidth_scale * efficiency / sharing

    def estimate(
        self,
        src: str,
        dst: str,
        size_mb: float,
        mechanism: str = "globus",
        concurrency: Optional[int] = None,
    ) -> TransferEstimate:
        """Deterministic (no-jitter) duration estimate for a transfer."""
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        if src == dst:
            return TransferEstimate(duration_s=0.0, bandwidth_mbps=float("inf"), startup_s=0.0)
        link = self.link(src, dst)
        bw = self.effective_bandwidth(src, dst, mechanism, concurrency)
        startup = MECHANISM_STARTUP_S.get(mechanism, 1.0) + link.latency_s
        duration = startup + size_mb / bw
        return TransferEstimate(duration_s=duration, bandwidth_mbps=bw, startup_s=startup)

    def sample_duration(
        self,
        src: str,
        dst: str,
        size_mb: float,
        mechanism: str = "globus",
        concurrency: Optional[int] = None,
    ) -> float:
        """Sample an actual transfer duration, with jitter applied."""
        est = self.estimate(src, dst, size_mb, mechanism, concurrency)
        if est.duration_s == 0.0:
            return 0.0
        link = self.link(src, dst)
        if link.jitter > 0:
            factor = float(self._rng.lognormal(mean=0.0, sigma=link.jitter))
        else:
            factor = 1.0
        return est.duration_s * factor

    def sample_failure(self, src: str, dst: str) -> bool:
        """Sample whether a transfer attempt on this link fails."""
        if src == dst:
            return False
        link = self.link(src, dst)
        if link.failure_rate <= 0:
            return False
        return bool(self._rng.random() < link.failure_rate)

    # ------------------------------------------------------------- factories
    @classmethod
    def uniform(
        cls,
        endpoint_names: Iterable[str],
        bandwidth_mbps: float = 100.0,
        latency_s: float = 0.05,
        jitter: float = 0.05,
        failure_rate: float = 0.0,
        seed: int = 0,
    ) -> "NetworkModel":
        """Fully-connected network with identical links between all endpoints."""
        names = list(endpoint_names)
        link = LinkSpec(
            bandwidth_mbps=bandwidth_mbps,
            latency_s=latency_s,
            jitter=jitter,
            failure_rate=failure_rate,
        )
        links = {}
        for a in names:
            for b in names:
                if a != b:
                    links[(a, b)] = link
        return cls(links=links, default_link=link, seed=seed)

    @classmethod
    def tiered(
        cls,
        endpoint_names: Iterable[str],
        core_count: int = 2,
        fast_mbps: float = 150.0,
        slow_mbps: float = 30.0,
        latency_s: float = 0.05,
        jitter: float = 0.0,
        failure_rate: float = 0.0,
        seed: int = 0,
    ) -> "NetworkModel":
        """A two-tier federation: fast core sites, slow edge links.

        The first ``core_count`` endpoints are connected to each other at
        ``fast_mbps`` (a campus backbone); every link that touches an edge
        endpoint runs at ``slow_mbps`` (institutional WAN).  The asymmetry
        makes replica placement matter: the data plane's multi-source
        selection can fetch from a core replica instead of the slow original,
        and its eviction policies trade cheap-to-refetch core data against
        expensive edge data.
        """
        names = list(endpoint_names)
        if not 0 < core_count <= len(names):
            raise ValueError("core_count must be within 1..len(endpoint_names)")
        fast = LinkSpec(
            bandwidth_mbps=fast_mbps, latency_s=latency_s, jitter=jitter,
            failure_rate=failure_rate,
        )
        slow = LinkSpec(
            bandwidth_mbps=slow_mbps, latency_s=latency_s, jitter=jitter,
            failure_rate=failure_rate,
        )
        core = set(names[:core_count])
        links = {}
        for a in names:
            for b in names:
                if a != b:
                    links[(a, b)] = fast if a in core and b in core else slow
        return cls(links=links, default_link=slow, seed=seed)

    @classmethod
    def testbed(cls, seed: int = 0) -> "NetworkModel":
        """Network approximating the paper's testbed.

        Taiyi and Qiming sit in the same campus (fast links between them and
        to the workstation); the department and lab clusters are reached over
        slower institutional links.  Bandwidths are chosen so that the drug
        screening workflow's ~45 GB of cross-site traffic (Table IV) stages in
        minutes, matching the relative makespans in the paper.
        """
        fast = LinkSpec(bandwidth_mbps=150.0, latency_s=0.02, jitter=0.05)
        medium = LinkSpec(bandwidth_mbps=60.0, latency_s=0.05, jitter=0.08)
        slow = LinkSpec(bandwidth_mbps=25.0, latency_s=0.08, jitter=0.10)
        model = cls(default_link=medium, seed=seed)
        model.set_link("taiyi", "qiming", fast)
        model.set_link("taiyi", "dept", medium)
        model.set_link("taiyi", "lab", slow)
        model.set_link("qiming", "dept", medium)
        model.set_link("qiming", "lab", slow)
        model.set_link("dept", "lab", medium)
        for name in ("taiyi", "qiming", "dept", "lab"):
            model.set_link("workstation", name, medium)
        return model
