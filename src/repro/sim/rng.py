"""Deterministic random-number streams for the simulator.

Every stochastic component (task durations, queue delays, transfer jitter,
failure injection) draws from its own named stream derived from a single
experiment seed.  This keeps experiments reproducible and lets individual
components be re-seeded in tests without perturbing the others.

The registry also supports state capture: :meth:`RngRegistry.get_state`
returns a JSON-safe dict of every named stream's bit-generator state, and
:meth:`RngRegistry.set_state` restores it, so a stream restored from a
snapshot emits the identical tail sequence the uninterrupted stream would
have (the durability layer's replay proof depends on this).
"""

from __future__ import annotations

import copy
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "derive_stream"]


def derive_stream(seed: int, name: str) -> np.random.Generator:
    """A named stream derived from ``seed`` exactly as :class:`RngRegistry`
    derives it — components constructed without a registry in hand (the
    placement service builds its stream straight from
    :attr:`~repro.core.config.Config.random_seed`) get the bit-identical
    generator the registry would have handed out for the same name."""
    child = np.random.SeedSequence([int(seed), _stable_hash(name)])
    return np.random.default_rng(child)


class RngRegistry:
    """Registry of named, independently seeded NumPy generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            # Derive a child seed from the experiment seed and the stream name
            # so streams are independent and stable across runs.
            self._streams[name] = derive_stream(self._seed, name)
        return self._streams[name]

    def stream_names(self) -> list:
        """Names of every stream created so far, sorted."""
        return sorted(self._streams)

    def reset(self, name: str | None = None) -> None:
        """Forget one stream (or all of them) so it is re-created on next use."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)

    # ------------------------------------------------------------- snapshots
    def get_state(self, name: str | None = None) -> Dict[str, object]:
        """Bit-generator state of one stream, or of every named stream.

        The returned dict contains only JSON-native values (NumPy's PCG64
        state is plain Python ints), so it can be embedded in a snapshot
        payload verbatim.
        """
        if name is not None:
            return copy.deepcopy(self.stream(name).bit_generator.state)
        return {
            stream: copy.deepcopy(self._streams[stream].bit_generator.state)
            for stream in sorted(self._streams)
        }

    def set_state(self, state: Dict[str, object], name: str | None = None) -> None:
        """Restore state captured by :meth:`get_state`.

        With ``name``, ``state`` is one stream's bit-generator state;
        without, it maps stream names to states (streams are created on
        demand, so restoring into a fresh registry works).
        """
        if name is not None:
            self.stream(name).bit_generator.state = copy.deepcopy(state)
            return
        for stream, stream_state in state.items():
            self.stream(stream).bit_generator.state = copy.deepcopy(stream_state)


def _stable_hash(name: str) -> int:
    """Deterministic 32-bit hash of a stream name (``hash()`` is salted)."""
    value = 2166136261
    for ch in name.encode("utf-8"):
        value ^= ch
        value = (value * 16777619) & 0xFFFFFFFF
    return value
