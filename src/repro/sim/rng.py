"""Deterministic random-number streams for the simulator.

Every stochastic component (task durations, queue delays, transfer jitter,
failure injection) draws from its own named stream derived from a single
experiment seed.  This keeps experiments reproducible and lets individual
components be re-seeded in tests without perturbing the others.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Registry of named, independently seeded NumPy generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            # Derive a child seed from the experiment seed and the stream name
            # so streams are independent and stable across runs.
            child = np.random.SeedSequence([self._seed, _stable_hash(name)])
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def reset(self, name: str | None = None) -> None:
        """Forget one stream (or all of them) so it is re-created on next use."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)


def _stable_hash(name: str) -> int:
    """Deterministic 32-bit hash of a stream name (``hash()`` is salted)."""
    value = 2166136261
    for ch in name.encode("utf-8"):
        value ^= ch
        value = (value * 16777619) & 0xFFFFFFFF
    return value
