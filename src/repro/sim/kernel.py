"""Discrete-event simulation kernel and clock abstractions.

The UniFaaS client, data manager, endpoints and transfer fabric are all
time-driven.  On the paper's testbed time is supplied by the wall clock; in
this reproduction the same components are driven by a discrete-event
simulation (DES) kernel so that multi-hour federated workflows can be
replayed in seconds.

Two clock implementations are provided:

* :class:`SimClock` — virtual time advanced by the :class:`SimulationKernel`.
* :class:`WallClock` — real time, used by the local (thread-pool) execution
  mode exercised in the examples.

Components never call ``time.time()`` or ``sleep`` directly; they receive a
:class:`Clock` and, when they need timed callbacks, a
:class:`SimulationKernel`.

Events may be marked as *daemon* events: recurring housekeeping (endpoint
idle checks, profiler refreshes, metrics sampling) that should run while the
simulation is alive but must not keep it alive on their own.  ``run()``
without an explicit ``until`` stops once only daemon events remain.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "Clock",
    "EventHandle",
    "SimClock",
    "SimulationKernel",
    "WallClock",
    "PeriodicHandle",
]


class Clock:
    """Abstract time source.

    Sub-classes expose :meth:`now` returning seconds as a float.  The origin
    is arbitrary (simulation start or process start); only differences are
    meaningful.
    """

    def now(self) -> float:
        raise NotImplementedError


class WallClock(Clock):
    """Real wall-clock time, measured from construction."""

    def __init__(self) -> None:
        self._t0 = _time.monotonic()

    def now(self) -> float:
        return _time.monotonic() - self._t0


class SimClock(Clock):
    """Virtual clock owned by a :class:`SimulationKernel`."""

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def _advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"cannot move simulation time backwards ({t} < {self._now})")
        self._now = t


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    daemon: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


@dataclass
class EventHandle:
    """Handle returned by :meth:`SimulationKernel.schedule` for cancellation."""

    _event: _ScheduledEvent
    _kernel: "SimulationKernel"

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        if not self._event.cancelled and not self._event.fired:
            self._event.cancelled = True
            self._kernel._on_event_removed(self._event)


@dataclass
class PeriodicHandle:
    """Handle for a periodic callback registered with the kernel."""

    interval: float
    callback: Callable[[], None]
    active: bool = True
    _next_handle: Optional[EventHandle] = None

    def cancel(self) -> None:
        self.active = False
        if self._next_handle is not None:
            self._next_handle.cancel()


class SimulationKernel:
    """Minimal but complete discrete-event simulation engine.

    Events are ``(time, callback, args)`` triples kept in a binary heap.
    Insertion order breaks ties so that the simulation is deterministic.

    The kernel is intentionally free of any UniFaaS-specific knowledge: the
    FaaS fabric, data manager and schedulers register callbacks on it, which
    keeps every higher layer testable against a bare kernel.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._non_daemon_pending = 0

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        return self.clock.now()

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of pending *non-daemon* events (the ones that drive work)."""
        return self._non_daemon_pending

    @property
    def pending_events_total(self) -> int:
        """All pending events, including daemon housekeeping."""
        return sum(1 for e in self._queue if not e.cancelled)

    # -------------------------------------------------------------- schedule
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        daemon: bool = False,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule_at(self.now() + delay, callback, *args, daemon=daemon, label=label)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        daemon: bool = False,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time ``when``."""
        if when < self.now():
            raise ValueError(f"cannot schedule in the past ({when} < {self.now()})")
        event = _ScheduledEvent(
            time=when,
            seq=next(self._seq),
            callback=callback,
            args=args,
            daemon=daemon,
            label=label,
        )
        heapq.heappush(self._queue, event)
        if not daemon:
            self._non_daemon_pending += 1
        return EventHandle(event, self)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start_delay: float | None = None,
        daemon: bool = False,
    ) -> PeriodicHandle:
        """Invoke ``callback()`` every ``interval`` seconds until cancelled."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        handle = PeriodicHandle(interval=interval, callback=callback)

        def _tick() -> None:
            if not handle.active:
                return
            callback()
            if handle.active:
                handle._next_handle = self.schedule(
                    interval, _tick, daemon=daemon, label="periodic"
                )

        first = interval if start_delay is None else start_delay
        handle._next_handle = self.schedule(first, _tick, daemon=daemon, label="periodic")
        return handle

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Process the next non-cancelled event.  Returns ``False`` if idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock._advance_to(event.time)
            self._events_processed += 1
            event.fired = True
            self._on_event_removed(event)
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute simulation time to stop at (events at exactly ``until``
            are processed, including daemon events).
        stop_when:
            Predicate checked after every event; the loop stops when it
            returns ``True``.
        max_events:
            Safety limit on the number of events processed by this call.

        Without ``until``, the loop stops when only daemon events remain —
        otherwise recurring housekeeping would keep the simulation alive
        forever.  Returns the simulation time at which the loop stopped.
        """
        if until is not None and until <= self.now():
            return self.now()
        processed = 0
        while self._queue:
            if stop_when is not None and stop_when():
                break
            if until is None and self._non_daemon_pending == 0:
                break
            nxt = self._peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.clock._advance_to(until)
                break
            if not self.step():
                break
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self.now() < until and not self._queue:
            self.clock._advance_to(until)
        return self.now()

    # ------------------------------------------------------------- internal
    def _on_event_removed(self, event: _ScheduledEvent) -> None:
        if not event.daemon:
            self._non_daemon_pending -= 1

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time
