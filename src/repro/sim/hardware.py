"""Hardware descriptions of the heterogeneous testbed (paper Table II).

The paper evaluates UniFaaS on four clusters plus a submission workstation:

=============  ==============================  =====  =======
Name           CPU                             RAM    # nodes
=============  ==============================  =====  =======
Taiyi          2x Xeon Gold 6148 @ 2.4 GHz      192 GB    815
Qiming         2x Xeon E5-2690 @ 2.6 GHz         64 GB    230
Dept. cluster  2x Xeon Platinum 8260 @ 2.4 GHz  770 GB     26
Lab cluster    2x Xeon Gold 5320 @ 2.2 GHz      128 GB      2
Workstation    Core i5-9400 @ 2.9 GHz            16 GB      1
=============  ==============================  =====  =======

In this reproduction each cluster is described by a :class:`ClusterSpec`
whose ``speed_factor`` captures the *relative* per-core performance of the
cluster — the quantity the heterogeneity-aware scheduler cares about.  The
factors are chosen from the CPU generations above (newer cores run a given
task faster) and can be overridden per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = [
    "HardwareSpec",
    "ClusterSpec",
    "TAIYI",
    "QIMING",
    "DEPT_CLUSTER",
    "LAB_CLUSTER",
    "WORKSTATION",
    "testbed_clusters",
]


@dataclass(frozen=True)
class HardwareSpec:
    """Per-node hardware attributes visible to the execution profiler.

    These are the features the paper's random-forest execution model is
    trained on: core count, CPU frequency and RAM of the endpoint.
    """

    cores_per_node: int
    cpu_freq_ghz: float
    ram_gb: float
    #: Relative per-core throughput; 1.0 is the reference (Qiming-class core).
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.cpu_freq_ghz <= 0:
            raise ValueError("cpu_freq_ghz must be positive")
        if self.ram_gb <= 0:
            raise ValueError("ram_gb must be positive")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")

    def feature_vector(self) -> tuple[float, float, float]:
        """Features fed to performance models (cores, frequency, RAM)."""
        return (float(self.cores_per_node), self.cpu_freq_ghz, self.ram_gb)


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of identical nodes that can host one funcX-style endpoint."""

    name: str
    hardware: HardwareSpec
    num_nodes: int
    #: Default number of workers launched per node when the endpoint scales out.
    workers_per_node: int = 20
    #: Mean batch-scheduler queue delay (seconds) when provisioning a new node.
    queue_delay_mean_s: float = 0.0
    #: Spread (std-dev) of the queue delay.
    queue_delay_std_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.workers_per_node <= 0:
            raise ValueError("workers_per_node must be positive")
        if self.queue_delay_mean_s < 0 or self.queue_delay_std_s < 0:
            raise ValueError("queue delays must be non-negative")

    @property
    def max_workers(self) -> int:
        """Upper bound on concurrently running workers for the cluster."""
        return self.num_nodes * self.workers_per_node

    @property
    def speed_factor(self) -> float:
        return self.hardware.speed_factor

    def with_overrides(self, **kwargs) -> "ClusterSpec":
        """Return a copy with selected fields replaced (used by experiments)."""
        return replace(self, **kwargs)


# --------------------------------------------------------------------------
# Table II presets.  Speed factors reflect relative single-core throughput of
# the CPU generations (Skylake-SP 6148 and Cascade Lake 8260 are the fastest,
# Ice Lake 5320 close behind, Sandy Bridge-era E5-2690 the reference, and the
# desktop i5 in between).  Queue delays model the observation in §VII that
# Taiyi "usually has longer queue times than Qiming".
# --------------------------------------------------------------------------

TAIYI = ClusterSpec(
    name="taiyi",
    hardware=HardwareSpec(cores_per_node=40, cpu_freq_ghz=2.4, ram_gb=192, speed_factor=1.45),
    num_nodes=815,
    workers_per_node=40,
    queue_delay_mean_s=120.0,
    queue_delay_std_s=30.0,
)

QIMING = ClusterSpec(
    name="qiming",
    hardware=HardwareSpec(cores_per_node=24, cpu_freq_ghz=2.6, ram_gb=64, speed_factor=1.0),
    num_nodes=230,
    workers_per_node=24,
    queue_delay_mean_s=30.0,
    queue_delay_std_s=10.0,
)

DEPT_CLUSTER = ClusterSpec(
    name="dept",
    hardware=HardwareSpec(cores_per_node=48, cpu_freq_ghz=2.4, ram_gb=770, speed_factor=1.40),
    num_nodes=26,
    workers_per_node=24,
    queue_delay_mean_s=10.0,
    queue_delay_std_s=5.0,
)

LAB_CLUSTER = ClusterSpec(
    name="lab",
    hardware=HardwareSpec(cores_per_node=52, cpu_freq_ghz=2.2, ram_gb=128, speed_factor=1.25),
    num_nodes=2,
    workers_per_node=26,
    queue_delay_mean_s=0.0,
    queue_delay_std_s=0.0,
)

WORKSTATION = ClusterSpec(
    name="workstation",
    hardware=HardwareSpec(cores_per_node=6, cpu_freq_ghz=2.9, ram_gb=16, speed_factor=1.1),
    num_nodes=1,
    workers_per_node=6,
)


def testbed_clusters() -> Dict[str, ClusterSpec]:
    """The Table II clusters keyed by name."""
    return {
        c.name: c
        for c in (TAIYI, QIMING, DEPT_CLUSTER, LAB_CLUSTER, WORKSTATION)
    }
