"""The immutable output of one placement solve.

A :class:`PlacementPlan` is a value object: the solver builds a new one per
solve and the service swaps it in atomically, so every consumer (scheduler
tie-breaks, scaler anchor, data-plane preferences) reads one consistent
generation — never a half-updated mix of two solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["PlacementPlan"]


@dataclass(frozen=True)
class PlacementPlan:
    """Warm set, worker targets and replica roots from one solve."""

    #: Invalidation generation this plan was solved against (crash / rejoin /
    #: churn bump the service's generation, mirroring the endpoint monitor's
    #: ``state_version`` idiom; a stale generation triggers a re-solve at the
    #: next periodic check).
    generation: int
    #: Simulated time of the solve.
    solved_at: float
    #: Endpoints worth keeping warm, sorted (facilities left open).
    warm_endpoints: Tuple[str, ...] = ()
    #: Worker count each warm endpoint should be scaled toward.
    worker_targets: Mapping[str, int] = field(default_factory=dict)
    #: Replica root per hot dataset: ``file_id -> endpoint``.  The root is
    #: where the plan wants the authoritative warm copy; the data plane
    #: prefers it as a transfer source and the prefetcher as a destination.
    replica_roots: Mapping[str, str] = field(default_factory=dict)
    #: Solver objective value (seconds; diagnostics only).
    objective: float = 0.0

    def is_warm(self, endpoint: str) -> bool:
        return endpoint in self._warm_set

    def root_for(self, file_id: str) -> Optional[str]:
        return self.replica_roots.get(file_id)

    @property
    def _warm_set(self) -> frozenset:
        cached = self.__dict__.get("_warm_cache")
        if cached is None:
            cached = frozenset(self.warm_endpoints)
            object.__setattr__(self, "_warm_cache", cached)
        return cached

    def describe(self) -> Dict[str, object]:
        """JSON-native summary (durability capture, examples, tests)."""
        return {
            "generation": int(self.generation),
            "solved_at": round(float(self.solved_at), 9),
            "warm": list(self.warm_endpoints),
            "targets": {k: int(v) for k, v in sorted(self.worker_targets.items())},
            "roots": {k: self.replica_roots[k] for k in sorted(self.replica_roots)},
            "objective": round(float(self.objective), 9),
        }
