"""Deterministic local-search solver for the global placement problem.

The problem is capacitated facility location in the paper-testbed's terms:

* **facilities** are endpoints — opening one means keeping it warm (a
  per-facility opening cost models the price of holding a site hot), and an
  open facility should receive at least a minimum useful worker count (the
  *lower bound* of Li 2018);
* **clients** are hot datasets — files several pending tasks will read —
  assigned to a *replica root* under the endpoint's hard staging-storage
  capacity (Kao 2021's hard-capacity regime);
* the **objective** is in seconds, every term derived from the prediction
  machinery the schedulers already trust: a parallel-execution estimate over
  the open set, the bottleneck facility's hot-data service load, the cost of
  establishing each root replica, a split penalty for co-accessed files
  rooted apart (the extra transfer a shared consumer forces), and the
  opening costs.

The search is plain first-improvement local search over four move kinds —
``open`` / ``close`` / ``swap`` on the warm set, ``reassign`` on the roots —
with the candidate order shuffled by the dedicated "placement" RNG stream.
Every tie in the greedy construction breaks on sorted names, so the solve is
a pure function of (problem, RNG state): byte-identical across repeats and
across the vector/scalar and columnar/scalar engine modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.rounding import largest_remainder_split
from repro.placement.plan import PlacementPlan

__all__ = ["HotFile", "PlacementProblem", "solve_placement"]

#: Stop after this many full improvement passes (each pass tries every move
#: once in shuffled order; convergence is almost always earlier).
_MAX_PASSES = 8

#: An accepted move must improve the objective by more than this (seconds),
#: so float noise cannot make the search wander between equal solutions.
_EPSILON = 1e-9


@dataclass(frozen=True)
class HotFile:
    """One hot dataset: a file with enough pending consumers to plan for."""

    file_id: str
    size_mb: float
    consumers: int
    #: Seconds to establish a replica at each endpoint (0 where present).
    pull_cost: Mapping[str, float]
    #: consumers x mean predicted execution seconds at each endpoint.
    serve_cost: Mapping[str, float]


@dataclass
class PlacementProblem:
    """Everything one solve needs, snapshotted from the live run."""

    #: Online endpoints, in deterministic (topology) order.
    endpoints: List[str]
    max_workers: Dict[str, int]
    #: Remaining staging-storage budget at each endpoint in MB (None = inf).
    capacity_mb: Dict[str, Optional[float]]
    #: Mean predicted seconds per pending task at each endpoint.
    perf: Dict[str, float]
    #: Pending (unplaced) task count across every attached workflow.
    demand: int
    hot_files: List[HotFile] = field(default_factory=list)
    #: Shared-consumer counts for co-accessed hot-file pairs (ids sorted).
    co_access: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Cost (seconds) of keeping one facility warm.
    open_cost_s: float = 2.0
    #: Lower bound: workers a warm facility should be targeted at least.
    min_workers: int = 1


def solve_placement(
    problem: PlacementProblem,
    rng: np.random.Generator,
    *,
    generation: int,
    now: float,
) -> PlacementPlan:
    """Solve ``problem`` into an immutable :class:`PlacementPlan`."""
    endpoints = list(problem.endpoints)
    if not endpoints:
        return PlacementPlan(generation=generation, solved_at=now)

    if problem.demand <= 0 and not problem.hot_files:
        # Nothing to place: with no demand signal the objective degenerates
        # to pure opening cost and the search would collapse the warm set to
        # a single arbitrary facility — which the schedulers' warm filter
        # would then treat as a directive.  Return the neutral plan instead:
        # every endpoint warm (no steering), no targets, no roots.
        return PlacementPlan(
            generation=generation,
            solved_at=now,
            warm_endpoints=tuple(sorted(endpoints)),
        )

    state = _State(problem)
    state.greedy_init()
    state.local_search(rng)

    warm = tuple(sorted(state.warm))
    targets = _worker_targets(problem, warm)
    return PlacementPlan(
        generation=generation,
        solved_at=now,
        warm_endpoints=warm,
        worker_targets=targets,
        replica_roots=dict(sorted(state.roots.items())),
        objective=state.objective(),
    )


def _worker_targets(problem: PlacementProblem, warm: Tuple[str, ...]) -> Dict[str, int]:
    """Apportion the pending demand over the warm set, lower-bounded.

    The split is proportional to each facility's service *rate*
    (workers / seconds-per-task) via the shared largest-remainder helper, so
    it rounds exactly the way the elastic scaler and the fair-share
    arbitration round.  The facility lower bound is enforced afterwards:
    while demand allows, every warm facility is targeted at least
    ``min_workers``, taking from the largest target deterministically.
    """
    if not warm:
        return {}
    caps = {e: max(1, int(problem.max_workers.get(e, 1))) for e in warm}
    total_cap = sum(caps.values())
    demand = min(max(0, int(problem.demand)), total_cap)
    weights = {
        e: caps[e] / max(problem.perf.get(e, 1.0), 1e-9) for e in warm
    }
    targets = largest_remainder_split(demand, weights, caps=caps)
    floor = max(0, int(problem.min_workers))
    if floor and demand >= floor * len(warm):
        for name in sorted(warm):
            while targets[name] < min(floor, caps[name]):
                donor = max(
                    sorted(warm), key=lambda e: (targets[e] - floor, e != name)
                )
                if targets[donor] <= floor:
                    break
                targets[donor] -= 1
                targets[name] += 1
    return {e: targets[e] for e in sorted(warm)}


class _State:
    """Mutable search state: the warm set, the roots, and cached loads."""

    def __init__(self, problem: PlacementProblem) -> None:
        self.p = problem
        self.warm: set = set(problem.endpoints)
        #: file_id -> root endpoint (only feasible assignments appear).
        self.roots: Dict[str, str] = {}
        self._files = {f.file_id: f for f in problem.hot_files}
        self._used_mb: Dict[str, float] = {e: 0.0 for e in problem.endpoints}

    # ------------------------------------------------------------ feasibility
    def _fits(self, file: HotFile, endpoint: str) -> bool:
        capacity = self.p.capacity_mb.get(endpoint)
        if capacity is None:
            return True
        if file.pull_cost.get(endpoint, 0.0) == 0.0:
            return True  # already resident: rooting it occupies no new space
        return self._used_mb[endpoint] + file.size_mb <= capacity

    def _charge(self, file: HotFile, endpoint: str, sign: float) -> None:
        if file.pull_cost.get(endpoint, 0.0) != 0.0:
            self._used_mb[endpoint] += sign * file.size_mb

    # ------------------------------------------------------------- objective
    def objective(self) -> float:
        p = self.p
        total = p.open_cost_s * len(self.warm)

        rate = sum(
            p.max_workers.get(e, 1) / max(p.perf.get(e, 1.0), 1e-9)
            for e in self.warm
        )
        if rate > 0.0:
            total += p.demand / rate
        elif p.demand:
            total += float(p.demand)  # degenerate warm set: heavily penalized

        load: Dict[str, float] = {}
        for file_id, root in self.roots.items():
            file = self._files[file_id]
            total += file.pull_cost.get(root, 0.0)
            load[root] = load.get(root, 0.0) + file.serve_cost.get(root, 0.0)
        if load:
            total += max(
                seconds / max(1, p.max_workers.get(e, 1))
                for e, seconds in load.items()
            )

        for (fa, fb), _shared in p.co_access.items():
            ra, rb = self.roots.get(fa), self.roots.get(fb)
            if ra is None or rb is None or ra == rb:
                continue
            # A consumer of both files runs at one root and forces one extra
            # transfer of the other file: the cheaper direction's pull cost.
            total += min(
                self._files[fa].pull_cost.get(rb, 0.0),
                self._files[fb].pull_cost.get(ra, 0.0),
            )

        unrooted = len(self._files) - len(self.roots)
        if unrooted:
            # An unrooted hot file falls back to on-demand greedy staging:
            # in the worst case every consumer's endpoint pulls its own copy,
            # so the penalty is consumer-weighted — the search only leaves
            # files unrooted when capacity genuinely forces it.
            total += sum(
                max(f.pull_cost.values(), default=0.0) * max(1, f.consumers)
                for f in self._files.values()
                if f.file_id not in self.roots
            )
        return total

    # --------------------------------------------------------------- moves
    def greedy_init(self) -> None:
        """Largest files first, each to its cheapest feasible warm endpoint."""
        ordered = sorted(
            self.p.hot_files, key=lambda f: (-f.size_mb, f.file_id)
        )
        for file in ordered:
            best = self._cheapest_root(file)
            if best is not None:
                self.roots[file.file_id] = best
                self._charge(file, best, +1.0)

    def _cheapest_root(self, file: HotFile) -> Optional[str]:
        best, best_cost = None, float("inf")
        for endpoint in sorted(self.warm):
            if not self._fits(file, endpoint):
                continue
            cost = file.pull_cost.get(endpoint, 0.0) + file.serve_cost.get(
                endpoint, 0.0
            ) / max(1, self.p.max_workers.get(endpoint, 1))
            if cost < best_cost:
                best, best_cost = endpoint, cost
        return best

    def local_search(self, rng: np.random.Generator) -> None:
        current = self.objective()
        for _ in range(_MAX_PASSES):
            moves = self._moves()
            if not moves:
                return
            improved = False
            for index in rng.permutation(len(moves)):
                move = moves[index]
                undo = self._apply(move)
                if undo is None:
                    continue
                candidate = self.objective()
                if candidate < current - _EPSILON:
                    current = candidate
                    improved = True
                else:
                    undo()
            if not improved:
                return

    def _moves(self) -> List[Tuple]:
        moves: List[Tuple] = []
        cold = sorted(set(self.p.endpoints) - self.warm)
        warm = sorted(self.warm)
        for endpoint in cold:
            moves.append(("open", endpoint))
        if len(warm) > 1:
            for endpoint in warm:
                moves.append(("close", endpoint))
        for closed in cold:
            for opened in warm:
                moves.append(("swap", closed, opened))
        for file_id in sorted(self._files):
            for endpoint in warm:
                if self.roots.get(file_id) != endpoint:
                    moves.append(("reassign", file_id, endpoint))
        return moves

    def _apply(self, move: Tuple):
        """Apply ``move``; return an undo closure, or None when infeasible."""
        kind = move[0]
        if kind == "open":
            return self._apply_open(move[1])
        if kind == "close":
            return self._apply_close(move[1])
        if kind == "swap":
            undo_open = self._apply_open(move[1])
            if undo_open is None:
                return None
            undo_close = self._apply_close(move[2])
            if undo_close is None:
                undo_open()
                return None

            def undo() -> None:
                undo_close()
                undo_open()

            return undo
        file_id, endpoint = move[1], move[2]
        return self._apply_reassign(file_id, endpoint)

    def _apply_open(self, endpoint: str):
        if endpoint in self.warm:
            return None
        self.warm.add(endpoint)

        def undo() -> None:
            self.warm.discard(endpoint)

        return undo

    def _apply_close(self, endpoint: str):
        if endpoint not in self.warm or len(self.warm) <= 1:
            return None
        displaced = sorted(
            fid for fid, root in self.roots.items() if root == endpoint
        )
        self.warm.discard(endpoint)
        previous: Dict[str, Optional[str]] = {}
        for fid in displaced:
            file = self._files[fid]
            previous[fid] = endpoint
            self._charge(file, endpoint, -1.0)
            new_root = self._cheapest_root(file)
            if new_root is None:
                del self.roots[fid]
            else:
                self.roots[fid] = new_root
                self._charge(file, new_root, +1.0)

        def undo() -> None:
            for fid, old_root in previous.items():
                file = self._files[fid]
                current = self.roots.get(fid)
                if current is not None:
                    self._charge(file, current, -1.0)
                self.roots[fid] = old_root
                self._charge(file, old_root, +1.0)
            self.warm.add(endpoint)

        return undo

    def _apply_reassign(self, file_id: str, endpoint: str):
        if endpoint not in self.warm:
            return None
        file = self._files[file_id]
        old_root = self.roots.get(file_id)
        if old_root == endpoint:
            return None
        if old_root is not None:
            self._charge(file, old_root, -1.0)
        if not self._fits(file, endpoint):
            if old_root is not None:
                self._charge(file, old_root, +1.0)
            return None
        self.roots[file_id] = endpoint
        self._charge(file, endpoint, +1.0)

        def undo() -> None:
            self._charge(file, endpoint, -1.0)
            if old_root is None:
                del self.roots[file_id]
            else:
                self.roots[file_id] = old_root
                self._charge(file, old_root, +1.0)

        return undo
