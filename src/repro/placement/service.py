"""The placement service: owns the plan lifecycle across the run.

One service instance serves one federation — the single-workflow engine
builds its own, the multi-workflow :class:`~repro.serving.manager.
WorkflowManager` builds one and shares it across every tenant engine.  The
service:

* snapshots the live state (pending demand, hot datasets, online endpoints,
  remaining storage budgets, prediction means) into a
  :class:`~repro.placement.solver.PlacementProblem` and re-solves it on the
  configured cadence (:attr:`~repro.core.config.Config.placement_interval_s`);
* tracks an **invalidation generation** mirroring the endpoint monitor's
  ``state_version`` idiom: a crash marks the endpoint offline and bumps the
  generation, a rejoin re-admits it, worker churn bumps without touching the
  offline set — a stale generation forces a re-solve at the next periodic
  check regardless of the cadence;
* on adopting a new plan, **proactively replicates** hot datasets toward
  their plan roots through the data plane's prefetch class, so consumers
  find warm replicas where the plan wants them instead of each endpoint
  pulling its own copy on demand;
* draws from the dedicated ``"placement"`` RNG stream (derived from
  :attr:`Config.random_seed` exactly as :class:`~repro.sim.rng.RngRegistry`
  would derive it), and captures plan + stream state for the durability
  layer's snapshot/replay proof.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dag import TaskState
from repro.placement.plan import PlacementPlan
from repro.placement.solver import HotFile, PlacementProblem, solve_placement
from repro.sim.rng import derive_stream

__all__ = ["PlacementService"]

#: A file is a *hot dataset* when at least this many pending tasks read it…
_MIN_CONSUMERS = 2
#: …and it is large enough that where its replica lives matters (small
#: intermediates move in milliseconds; planning roots for them only churns
#: the transfer log without changing any schedule).
_MIN_HOT_MB = 16.0
#: Pending-task sample cap per workflow for the per-endpoint perf means.
_PERF_SAMPLE = 512
#: Consumer sample cap per hot file for its serve-cost row.
_CONSUMER_SAMPLE = 64

#: States counted as pending demand: every task not yet running at its
#: endpoint.  SCHEDULED/STAGING/STAGED tasks hold a placement but are still
#: rescheduling-eligible and their inputs still drive replica demand, so
#: excluding them would collapse the problem mid-run while work remains.
_PENDING_STATES = (
    TaskState.PENDING,
    TaskState.READY,
    TaskState.SCHEDULED,
    TaskState.STAGING,
    TaskState.STAGED,
)


class PlacementService:
    """Periodic global placement solves + dynamics invalidation."""

    def __init__(self, config, rng: Optional[np.random.Generator] = None) -> None:
        self.config = config
        self.interval_s = float(config.placement_interval_s)
        self._rng = (
            rng
            if rng is not None
            else derive_stream(config.random_seed, "placement")
        )
        self._engines: List[object] = []
        self._plan: Optional[PlacementPlan] = None
        self._generation = 0
        self._solved_generation = -1
        self._last_solved: Optional[float] = None
        self._offline: set = set()
        #: Hot-file bookkeeping of the latest solve (drives replication).
        self._consumers: Dict[str, List] = {}
        self._hot_file_objects: List = []

        # Counters (tests / durability capture / diagnostics).
        self.solve_count = 0
        self.replications_issued = 0

    # ------------------------------------------------------------- providers
    def attach(self, engine) -> None:
        """Register an engine whose graph feeds the demand/hot-file scan."""
        if engine not in self._engines:
            self._engines.append(engine)

    def detach(self, engine) -> None:
        """Forget a retired tenant engine (open-loop serving: keeps the
        attached set O(live tenants), not O(all-time tenants))."""
        if engine in self._engines:
            self._engines.remove(engine)

    def current_plan(self) -> Optional[PlacementPlan]:
        return self._plan

    def plan_token(self) -> Tuple[int, int]:
        """Cheap identity of the current plan (re-schedule fingerprints)."""
        return (self._generation, self.solve_count)

    @property
    def generation(self) -> int:
        return self._generation

    # ----------------------------------------------------------- invalidation
    def mark_offline(self, endpoint: str) -> None:
        """A crash: exclude the endpoint from solves and invalidate the plan.

        Set-deduped — in the serving layer every tenant engine forwards the
        same crash event to the shared service, and only the first arrival
        may bump the generation.
        """
        if endpoint in self._offline:
            return
        self._offline.add(endpoint)
        self._generation += 1

    def mark_online(self, endpoint: str) -> None:
        """A rejoin: re-admit the endpoint and invalidate the plan."""
        if endpoint not in self._offline:
            return
        self._offline.discard(endpoint)
        self._generation += 1

    def bump(self) -> None:
        """Capacity changed (worker churn, scaling): invalidate the plan."""
        self._generation += 1

    def offline_endpoints(self) -> List[str]:
        return sorted(self._offline)

    # ---------------------------------------------------------------- solving
    def maybe_resolve(self, now: float, engine) -> Optional[PlacementPlan]:
        """Re-solve when the cadence elapsed or the generation moved on."""
        if self._last_solved is not None:
            fresh = self._solved_generation == self._generation
            if fresh and now - self._last_solved < self.interval_s:
                return self._plan
        return self.resolve(now, engine)

    def resolve(self, now: float, engine) -> Optional[PlacementPlan]:
        """Solve unconditionally against the current live state."""
        self.attach(engine)
        engines = [e for e in self._engines if getattr(e, "context", None) is not None]
        if not engines:
            return self._plan
        problem = self._build_problem(engines)
        generation = self._generation
        plan = solve_placement(
            problem, self._rng, generation=generation, now=now
        )
        self._plan = plan
        self._last_solved = now
        self._solved_generation = generation
        self.solve_count += 1
        self._replicate(plan, engines[0].data_manager)
        return plan

    # ------------------------------------------------------------ replication
    def _replicate(self, plan: PlacementPlan, data_manager) -> None:
        """Push each hot dataset toward its plan root (prefetch class).

        Speculative like every prefetch: losing the replica to eviction or a
        crash is safe, demand staging re-stages on placement.  Issued largest
        file first so the scarce prefetch bandwidth goes to the datasets
        whose WAN pull would hurt the most.
        """
        prefetch = getattr(data_manager, "prefetch", None)
        if prefetch is None or not plan.replica_roots:
            return
        rooted = [
            (file, plan.replica_roots[file.file_id])
            for file in self._hot_file_objects
            if file.file_id in plan.replica_roots
        ]
        rooted.sort(key=lambda pair: (-pair[0].size_mb, pair[0].file_id))
        for file, root in rooted:
            if prefetch(file, root, priority=float(len(self._consumers[file.file_id]))):
                self.replications_issued += 1

    # -------------------------------------------------------- problem building
    def _build_problem(self, engines) -> PlacementProblem:
        context = engines[0].context
        monitor = engines[0].endpoint_monitor
        names = [
            name
            for name in context.endpoint_names()
            if name not in self._offline
        ]
        max_workers = {
            name: max(1, int(monitor.mock(name).max_workers)) for name in names
        }
        capacity_mb = self._remaining_capacity(engines[0].data_manager, names)

        demand = 0
        perf_rows: List[np.ndarray] = []
        self._consumers: Dict[str, List] = {}
        self._hot_file_objects: List = []
        file_objects: Dict[str, object] = {}
        owner_context: Dict[str, object] = {}
        co_access: Dict[Tuple[str, str], int] = {}

        for engine in engines:
            ctx = engine.context
            pending = sorted(
                (t for t in engine.graph if t.state in _PENDING_STATES),
                key=lambda t: t.task_id,
            )
            demand += len(pending)
            if not pending:
                continue
            arrays = ctx.ensure_arrays()
            sample = pending[:_PERF_SAMPLE]
            rows = arrays.rows(sample, 1.0)
            perf_rows.append(arrays.exec_matrix[rows])
            for task in pending:
                hot_inputs = []
                for file in task.input_files:
                    if file.size_mb < _MIN_HOT_MB or not file.locations:
                        continue
                    fid = file.file_id
                    if fid not in file_objects:
                        file_objects[fid] = file
                        owner_context[fid] = ctx
                        self._consumers[fid] = []
                    self._consumers[fid].append(task)
                    hot_inputs.append(fid)
                hot_inputs.sort()
                for i, fa in enumerate(hot_inputs):
                    for fb in hot_inputs[i + 1 :]:
                        co_access[(fa, fb)] = co_access.get((fa, fb), 0) + 1

        perf = self._perf_means(names, perf_rows, context)
        hot_files = []
        for fid in sorted(file_objects):
            consumers = self._consumers[fid]
            if len(consumers) < _MIN_CONSUMERS:
                continue
            file = file_objects[fid]
            ctx = owner_context[fid]
            arrays = ctx.ensure_arrays()
            rows = arrays.rows(consumers[:_CONSUMER_SAMPLE], 1.0)
            exec_rows = arrays.exec_matrix[rows]
            serve: Dict[str, float] = {}
            pull: Dict[str, float] = {}
            for name in names:
                column = arrays.endpoint_index(name)
                serve[name] = float(exec_rows[:, column].mean()) * len(consumers)
                pull[name] = self._pull_cost(ctx, file, name)
            hot_files.append(
                HotFile(
                    file_id=fid,
                    size_mb=float(file.size_mb),
                    consumers=len(consumers),
                    pull_cost=pull,
                    serve_cost=serve,
                )
            )
        hot_ids = {f.file_id for f in hot_files}
        co_access = {
            pair: count for pair, count in co_access.items() if pair[0] in hot_ids and pair[1] in hot_ids
        }
        self._hot_file_objects = [file_objects[f.file_id] for f in hot_files]

        return PlacementProblem(
            endpoints=names,
            max_workers=max_workers,
            capacity_mb=capacity_mb,
            perf=perf,
            demand=demand,
            hot_files=hot_files,
            co_access=dict(sorted(co_access.items())),
        )

    @staticmethod
    def _pull_cost(ctx, file, endpoint: str) -> float:
        """Seconds to establish a replica of ``file`` at ``endpoint``.

        Mirrors the per-file branch of
        :meth:`~repro.sched.base.SchedulingContext.predicted_staging_time`:
        zero where a replica is already resident, otherwise the cheapest
        online source (multi-source with the data plane, primary replica
        without), so the solver costs replication against the same candidate
        set the transfer scheduler will actually use.
        """
        if file.available_at(endpoint) or file.size_mb <= 0:
            return 0.0
        profiler = ctx.transfer_profiler
        if ctx.config.enable_dataplane:
            sources = ctx.staging_sources(file)
            if not sources:
                return 0.0
            return float(
                min(
                    profiler.predict_transfer_time(src, endpoint, file.size_mb)
                    for src in sources
                )
            )
        source = file.primary_location
        if source is None:
            return 0.0
        return float(profiler.predict_transfer_time(source, endpoint, file.size_mb))

    def _perf_means(self, names, perf_rows, context) -> Dict[str, float]:
        if not perf_rows:
            return {name: 1.0 for name in names}
        stacked = np.vstack(perf_rows)
        arrays = context.ensure_arrays()
        perf = {}
        for name in names:
            column = arrays.endpoint_index(name)
            perf[name] = float(stacked[:, column].mean())
        return perf

    @staticmethod
    def _remaining_capacity(data_manager, names) -> Dict[str, Optional[float]]:
        store = getattr(data_manager, "store", None)
        capacity: Dict[str, Optional[float]] = {}
        for name in names:
            if store is None:
                capacity[name] = None
                continue
            budget = store.capacity_mb(name)
            if budget is None:
                capacity[name] = None
            else:
                capacity[name] = max(0.0, float(budget) - float(store.usage_mb(name)))
        return capacity

    # ------------------------------------------------------------- durability
    def capture_state(self) -> Dict[str, object]:
        """JSON-native manifest for the durability snapshot sections."""
        return {
            "generation": int(self._generation),
            "solves": int(self.solve_count),
            "offline": sorted(self._offline),
            "replications": int(self.replications_issued),
            "plan": self._plan.describe() if self._plan is not None else None,
            "rng": copy.deepcopy(self._rng.bit_generator.state),
        }
