"""Global placement: a capacitated facility-location plan for the federation.

DHA places greedily per task, the elastic scaler splits shortfall by raw
headroom, and the prefetcher guesses destinations one task at a time — three
layers independently re-deriving the same global question.  This package
answers it once: a periodic batch optimizer treats endpoints as *facilities*
(opening cost = the price of keeping a site warm, lower bound = its minimum
useful worker count) and hot datasets' replica placements as *assignments*
under the replica store's hard GB capacities (Kao 2021, *Improved LP-based
Approximations for Facility Location with Hard Capacities*; Li 2018, *On
Facility Location with General Lower Bounds*), and emits an immutable
:class:`~repro.placement.plan.PlacementPlan` the greedy layers consult.
"""

from repro.placement.plan import PlacementPlan
from repro.placement.service import PlacementService
from repro.placement.solver import PlacementProblem, solve_placement

__all__ = [
    "PlacementPlan",
    "PlacementProblem",
    "PlacementService",
    "solve_placement",
]
