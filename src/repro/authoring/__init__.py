"""Decorator-based workflow authoring over the dynamic task graph.

Public surface::

    from repro.authoring import job, after, require, ensure, workflow
    from repro.authoring import WorkflowRun

See :mod:`repro.authoring.api` for the declaration semantics,
:mod:`repro.authoring.runtime` for the execution model, and
:mod:`repro.authoring.zoo` for the registered scenario-zoo workflows.
"""

from repro.authoring.api import (
    EDGE_STATUSES,
    Job,
    JobEdge,
    WorkflowDefinition,
    after,
    ensure,
    job,
    require,
    workflow,
)
from repro.authoring.registry import (
    RegisteredWorkflow,
    build_registered,
    get_workflow,
    is_registered,
    register_workflow,
    registered_names,
)
from repro.authoring.runtime import ARRAY_BATCH, JobOutcome, WorkflowRun

__all__ = [
    "ARRAY_BATCH",
    "EDGE_STATUSES",
    "Job",
    "JobEdge",
    "JobOutcome",
    "RegisteredWorkflow",
    "WorkflowDefinition",
    "WorkflowRun",
    "after",
    "build_registered",
    "ensure",
    "get_workflow",
    "is_registered",
    "job",
    "register_workflow",
    "registered_names",
    "require",
    "workflow",
]
