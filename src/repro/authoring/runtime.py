"""Runtime that executes an authored workflow over the dynamic task graph.

:class:`WorkflowRun` bridges the declarative surface of
:mod:`repro.authoring.api` and the engine's runtime-growth machinery:

- Plain success-edge jobs materialize *eagerly* at start, in declaration
  order, with their parents' futures as arguments — exactly the engine calls
  a legacy static generator makes, which is why a workflow using only those
  constructs is digest-identical to its static original.
- Everything else (failure/any edges, pre/postconditions, arrays, loops, and
  anything downstream of them) is *deferred*: the run records terminal
  outcomes from the bus (it never publishes or submits during a cascade) and
  materializes newly-enabled jobs in :meth:`drain`, which the engine invokes
  as a growth hook at the top of every pump round.  That boundary is what
  keeps runtime growth byte-deterministic across the columnar and scalar
  event paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.authoring.api import Job, WorkflowDefinition
from repro.core.exceptions import WorkflowError
from repro.core.futures import UniFuture
from repro.engine.core import MAX_RETRIES_KWARG
from repro.engine.events import TaskCompleted, TaskFailed, TasksCompleted
from repro.workloads.spec import WorkloadInfo

__all__ = ["JobOutcome", "WorkflowRun"]


class JobOutcome:
    """Authoring-level terminal states of a job."""

    SUCCESS = "success"
    FAILURE = "failure"
    #: The job's edge condition can never be satisfied (e.g. a failure edge
    #: whose parent succeeded); it produces no engine tasks.
    SKIPPED = "skipped"


#: How many array elements may be live (materialized but not terminal) at
#: once.  Each drain tops the window back up, so a 100k-wide stage flows
#: through in bounded slices instead of 100k idle Task objects.
ARRAY_BATCH = 2048


class _JobRun:
    """Mutable per-job execution state."""

    __slots__ = (
        "job",
        "deferred",
        "guarded",
        "started",
        "terminal",
        "succeeded",
        "failed",
        "futures",
        "outcome",
        "trip",
        "trip_done",
        "trip_ok",
    )

    def __init__(self, job: Job) -> None:
        self.job = job
        self.deferred = False
        self.guarded = False
        #: Elements materialized so far (engine tasks + require-failed ones).
        self.started = 0
        #: Elements with a terminal outcome.
        self.terminal = 0
        self.succeeded = 0
        self.failed = 0
        self.futures: List[UniFuture] = []
        self.outcome: Optional[str] = None
        #: Loop state: completed-or-running trip number (1-based).
        self.trip = 0
        self.trip_done = False
        self.trip_ok = False

    @property
    def total(self) -> int:
        return self.job.array if self.job.array is not None else 1


class WorkflowRun:
    """Drive one instantiation of a :class:`WorkflowDefinition`.

    ``client`` is anything with the client facade (``submit``, ``engine``):
    a :class:`~repro.core.client.UniFaaSClient` or a serving-layer
    :class:`~repro.serving.manager.WorkflowHandle` — authored workflows run
    unchanged as tenants.
    """

    def __init__(
        self,
        definition: WorkflowDefinition,
        client,
        *,
        params: Optional[dict] = None,
        info: Optional[WorkloadInfo] = None,
    ) -> None:
        self.definition = definition
        self.client = client
        self.engine = client.engine
        self.info = info if info is not None else WorkloadInfo(name=definition.name)
        self.jobs = definition.instantiate(**(params or {}))
        self._runs: List[_JobRun] = [_JobRun(j) for j in self.jobs]
        self._by_job: Dict[Job, _JobRun] = {r.job: r for r in self._runs}
        self._by_task: Dict[str, Tuple[_JobRun, int]] = {}
        self._classify()
        self._started = False

    # --------------------------------------------------------- classification
    def _classify(self) -> None:
        """Split jobs into the eager prefix and the deferred remainder.

        A job is *guarded* when its authoring-level outcome must be observed
        before its children materialize: arrays, loops, conditions, poison
        failure injection, a failure/any edge watching it (the author expects
        it may fail, so success-edge siblings must wait for the verdict too —
        eagerly wiring them to a future that may never resolve would starve
        the engine instead of skipping the branch), or being itself deferred.
        A job is *deferred* when any edge is failure/any or any parent is
        guarded.  Declaration order guarantees parents classify first.
        """
        watched = set()
        for run in self._runs:
            for edge in run.job.edges:
                if edge.status != "success":
                    watched.add(edge.parent)
        for run in self._runs:
            job = run.job
            deferred = any(e.status != "success" for e in job.edges)
            for edge in job.edges:
                if self._by_job[edge.parent].guarded:
                    deferred = True
            run.deferred = deferred
            run.guarded = bool(
                deferred
                or job in watched
                or job.task_type.failure_rate > 0.0
                or job.array is not None
                or job.is_loop
                or job.preconditions
                or job.postconditions
            )

    # ----------------------------------------------------------------- start
    def start(self) -> "WorkflowRun":
        """Subscribe, materialize the eager prefix, install the growth hook."""
        if self._started:
            raise WorkflowError(f"workflow run {self.definition.name!r} already started")
        self._started = True
        bus = self.engine.bus
        bus.subscribe(TaskCompleted, self._on_task_completed)
        bus.subscribe(TasksCompleted, self._on_tasks_completed)
        bus.subscribe(TaskFailed, self._on_task_failed)
        for run in self._runs:
            if not run.deferred and not run.guarded:
                self._materialize_plain(run)
        self.engine.add_growth_hook(self.drain)
        # Guarded roots (arrays, loops, conditioned jobs without deferred
        # parents) materialize through the same path as later growth.
        self.drain()
        return self

    # --------------------------------------------------------- bus recording
    # Handlers only update counters — submissions happen in drain(), outside
    # every cascade, so the columnar and scalar paths log identically.
    def _on_task_completed(self, event: TaskCompleted) -> None:
        if event.success:
            self._record_terminal(event.task_id, True)

    def _on_tasks_completed(self, event: TasksCompleted) -> None:
        for task in event.tasks:
            self._record_terminal(task.task_id, True)

    def _on_task_failed(self, event: TaskFailed) -> None:
        self._record_terminal(event.task_id, False)

    def _record_terminal(self, task_id: str, success: bool) -> None:
        entry = self._by_task.get(task_id)
        if entry is None:
            return
        run, index = entry
        ok = success
        if ok:
            for pred in run.job.postconditions:
                if not pred(index):
                    ok = False
                    break
        run.terminal += 1
        if ok:
            run.succeeded += 1
        else:
            run.failed += 1
        if run.job.is_loop:
            run.trip_done = True
            run.trip_ok = ok

    # ----------------------------------------------------------------- drain
    def drain(self) -> None:
        """Materialize every newly-enabled job (engine growth hook).

        Runs to a fixpoint so a require-failure cascades through its failure
        edges within one pump round.
        """
        changed = True
        while changed:
            changed = False
            for run in self._runs:
                changed |= self._advance(run)

    def _advance(self, run: _JobRun) -> bool:
        if run.outcome is not None:
            return False
        if not run.deferred and not run.guarded:
            # Eager plain job: just resolve its outcome for downstream edges.
            if run.started and run.terminal >= run.total:
                run.outcome = (
                    JobOutcome.SUCCESS if run.failed == 0 else JobOutcome.FAILURE
                )
                return True
            return False
        if not run.started:
            enabled = self._edges_decided(run)
            if enabled is None:
                return False
            if not enabled:
                run.outcome = JobOutcome.SKIPPED
                return True
            return self._materialize(run)
        return self._progress_started(run)

    def _edges_decided(self, run: _JobRun) -> Optional[bool]:
        """None = still waiting; True = all edges satisfied; False = dead."""
        for edge in run.job.edges:
            outcome = self._by_job[edge.parent].outcome
            if outcome is None:
                return None
            if edge.status == "success" and outcome != JobOutcome.SUCCESS:
                return False
            if edge.status == "failure" and outcome != JobOutcome.FAILURE:
                return False
            if edge.status == "any" and outcome == JobOutcome.SKIPPED:
                return False
        return True

    # -------------------------------------------------------- materialization
    def _parent_args(self, job: Job) -> Tuple:
        """Data flow: futures of success-edge parents, in edge order."""
        args: List[UniFuture] = []
        for edge in job.edges:
            if edge.status == "success":
                args.extend(self._by_job[edge.parent].futures)
        return tuple(args)

    def _submit(self, run: _JobRun, index: int, args: Tuple) -> None:
        job = run.job
        kwargs = {}
        if job.retries is not None:
            kwargs[MAX_RETRIES_KWARG] = job.retries
        future = self.client.submit(job.function, args, kwargs)
        self._by_task[future.task_id] = (run, index)
        run.futures.append(future)
        self.info.register(future, job.name, job.duration_s, job.output_mb)

    def _materialize_plain(self, run: _JobRun) -> None:
        """Eager path: one engine task, parents wired as future arguments."""
        args = self._parent_args(run.job)
        run.started = 1
        self._submit(run, 0, args)

    def _materialize(self, run: _JobRun) -> bool:
        job = run.job
        if job.is_loop:
            return self._start_trip(run, 1)
        if job.array is not None:
            return self._top_up_array(run)
        if not self._check_require(run, 0):
            return True
        run.started = 1
        self._submit(run, 0, self._parent_args(job))
        return True

    def _check_require(self, run: _JobRun, index: int) -> bool:
        """Evaluate preconditions; on violation the element fails unrun."""
        for pred in run.job.preconditions:
            if not pred(index):
                run.started += 1
                run.terminal += 1
                run.failed += 1
                if run.job.array is None:
                    run.outcome = JobOutcome.FAILURE
                return False
        return True

    def _start_trip(self, run: _JobRun, trip: int) -> bool:
        run.trip = trip
        run.trip_done = False
        run.started += 1
        if not self._check_require(run, trip):
            # _check_require already counted the element; undo the double
            # started bump and fail the loop outright.
            run.started -= 1
            return True
        args = (
            (run.futures[-1],) if trip > 1 else self._parent_args(run.job)
        )
        self._submit(run, trip, args)
        return True

    def _top_up_array(self, run: _JobRun) -> bool:
        """Materialize the next slice of an array job's window.

        Hysteresis: refill only once the live window has half-drained, so
        the scheduler sees a few large ``on_tasks_added`` batches (its
        incremental recompute amortizes) instead of a per-round trickle.
        """
        total = run.job.array or 0
        live = run.started - run.terminal
        if run.started >= total or (run.started > 0 and live > ARRAY_BATCH // 2):
            return False
        want = min(total, run.terminal + ARRAY_BATCH)
        if want <= run.started:
            return False
        args = self._parent_args(run.job)
        changed = False
        index = run.started
        while run.started < want:
            if self._check_require(run, index):
                run.started += 1
                self._submit(run, index, args)
            index += 1
            changed = True
        return changed

    # ------------------------------------------------------------- progress
    def _progress_started(self, run: _JobRun) -> bool:
        job = run.job
        if job.is_loop:
            if not run.trip_done:
                return False
            if not run.trip_ok:
                run.outcome = JobOutcome.FAILURE
                return True
            if job.until is not None and job.until(run.trip):
                run.outcome = JobOutcome.SUCCESS
                return True
            if run.trip >= (job.max_trips or 1):
                # Bounded trip count exhausted without converging.
                run.outcome = JobOutcome.FAILURE
                return True
            return self._start_trip(run, run.trip + 1)
        if job.array is not None:
            changed = self._top_up_array(run)
            if run.terminal >= (job.array or 0):
                run.outcome = (
                    JobOutcome.SUCCESS if run.failed == 0 else JobOutcome.FAILURE
                )
                return True
            return changed
        if run.terminal >= 1:
            run.outcome = (
                JobOutcome.SUCCESS if run.failed == 0 else JobOutcome.FAILURE
            )
            return True
        return False

    # ------------------------------------------------------------ inspection
    def outcome(self, job_name: str) -> Optional[str]:
        """The authoring-level outcome of a job (None while undecided)."""
        for run in self._runs:
            if run.job.name == job_name:
                return run.outcome
        raise WorkflowError(f"unknown job {job_name!r}")

    def outcomes(self) -> Dict[str, Optional[str]]:
        return {run.job.name: run.outcome for run in self._runs}

    def materialized(self, job_name: str) -> int:
        """Engine tasks created for a job so far."""
        for run in self._runs:
            if run.job.name == job_name:
                return len(run.futures)
        raise WorkflowError(f"unknown job {job_name!r}")
