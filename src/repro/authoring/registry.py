"""Named authored workflows, addressable from :class:`ScenarioSpec`.

A registered workflow turns a ``WorkloadSpec.kind`` string into a live
:class:`~repro.authoring.runtime.WorkflowRun`: the scenario layer resolves
the name here, the entry maps the spec's sizing knobs onto the definition's
parameters, and ``build`` starts the run against a client or tenant handle.
The three legacy generator strings never reach this module — their static
builders in ``scenarios/spec.py`` are untouched, which is what keeps every
existing preset digest stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.authoring.api import WorkflowDefinition
from repro.authoring.runtime import WorkflowRun
from repro.core.exceptions import WorkflowError
from repro.workloads.spec import TaskTypeSpec, WorkloadInfo

__all__ = [
    "RegisteredWorkflow",
    "build_registered",
    "get_workflow",
    "is_registered",
    "register_workflow",
    "registered_names",
    "unique_task_types",
]


def _no_params(spec) -> dict:
    return {}


@dataclass(frozen=True)
class RegisteredWorkflow:
    """One named zoo workflow plus its WorkloadSpec-to-params mapping."""

    name: str
    definition: WorkflowDefinition
    description: str = ""
    #: Maps the scenario's ``WorkloadSpec`` sizing knobs (task_count,
    #: duration_s, ...) onto the definition's declaration parameters.
    params: Callable[[object], dict] = field(default=_no_params)

    def task_types(self, spec) -> List[TaskTypeSpec]:
        """Unique task types of one instantiation (profiler pre-training)."""
        return unique_task_types(self.definition.task_types(**self.params(spec)))


def unique_task_types(types: List[TaskTypeSpec]) -> List[TaskTypeSpec]:
    """First spec per type name, in order.

    Profiler pre-seeding generates observations *per entry*, so a generator
    declaring one job per DAG node of a shared type must still seed that
    type exactly once — like the legacy static generators do.
    """
    seen: Dict[str, TaskTypeSpec] = {}
    for spec in types:
        if spec.name not in seen:
            seen[spec.name] = spec
    return list(seen.values())


_REGISTRY: Dict[str, RegisteredWorkflow] = {}


def register_workflow(
    definition: WorkflowDefinition,
    *,
    name: Optional[str] = None,
    description: str = "",
    params: Callable[[object], dict] = _no_params,
) -> RegisteredWorkflow:
    entry = RegisteredWorkflow(
        name=name or definition.name,
        definition=definition,
        description=description,
        params=params,
    )
    if entry.name in _REGISTRY:
        raise WorkflowError(f"workflow {entry.name!r} already registered")
    _REGISTRY[entry.name] = entry
    return entry


def is_registered(name: str) -> bool:
    _ensure_zoo_loaded()
    return name in _REGISTRY


def get_workflow(name: str) -> RegisteredWorkflow:
    _ensure_zoo_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkflowError(
            f"unknown workflow {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_names() -> List[str]:
    _ensure_zoo_loaded()
    return sorted(_REGISTRY)


def build_registered(
    name: str, client, spec, *, info: Optional[WorkloadInfo] = None
) -> WorkloadInfo:
    """Start a registered workflow on ``client`` (scenario entry point).

    Returns the run's :class:`WorkloadInfo`; it keeps filling in as deferred
    stages materialize during execution.  The run object itself is reachable
    as ``info.run`` for tests and scenario assertions.
    """
    entry = get_workflow(name)
    run = WorkflowRun(
        entry.definition, client, params=entry.params(spec), info=info
    )
    run.start()
    run.info.run = run  # type: ignore[attr-defined] — inspection backdoor
    return run.info


_ZOO_LOADED = False


def _ensure_zoo_loaded() -> None:
    # The zoo registers itself on import; resolve lazily to avoid a cycle
    # (zoo -> registry).
    global _ZOO_LOADED
    if not _ZOO_LOADED:
        _ZOO_LOADED = True
        from repro.authoring import zoo  # noqa: F401
