"""Decorator-based workflow authoring (dawgz-style) over the dynamic graph.

The three legacy generators build static DAGs through internal helpers; this
module is the user-facing surface for everything the engine could already do
but nothing exercised: runtime graph growth, failure-dependent control flow,
and parametric fan-out.

A workflow is declared as a function whose body creates jobs::

    @workflow
    def screening(width=1000):
        @job(duration_s=2.0, output_mb=1.5)
        def prepare():
            ...

        @after(prepare)
        @job(duration_s=0.1, array=width)
        def dock():
            ...

        @after(dock, status="failure")
        @job(duration_s=1.0, retries=0)
        def triage():
            ...

Semantics (executed by :class:`~repro.authoring.runtime.WorkflowRun`):

- ``after(parent)`` (a *success* edge) passes the parent's future(s) to the
  child and, for plain jobs, is wired eagerly as an ordinary engine
  dependency — a workflow using only plain success edges materializes its
  whole DAG up front, byte-identically to the legacy static generators.
- ``after(parent, status="failure")`` materializes the child only once the
  parent's §IV-G retry/reassign ladder is exhausted (terminal ``TaskFailed``)
  or a pre/postcondition is violated; ``status="any"`` fires on either
  terminal outcome.  Such children (and everything downstream of a guarded
  job) are *deferred*: they become engine tasks only when their trigger is
  observed, at a deterministic pump-round boundary.
- ``require(pred)`` gates materialization: evaluated right before the job
  would become an engine task; a falsy result fails the job without running
  it (its failure edges fire instead).
- ``ensure(pred)`` is a postcondition: evaluated when the engine task
  completes; a falsy result demotes the job's outcome to failure even though
  the task ran — the authoring-level conditional branch.
- ``array=n`` expands into ``n`` engine tasks lazily, in bounded batches, so
  a 100k-wide stage never holds 100k idle Python task objects (rows land in
  the columnar ``TaskStore`` as each batch materializes).
- ``max_trips=k, until=pred`` declares a convergence loop: trips run as
  chained engine tasks; ``until(trip)`` truthy stops with success, exhausting
  ``k`` trips without converging is a failure (catchable via a failure edge).

Every predicate receives a single int — the array index, the 1-based trip
number, or 0 for plain jobs — and must be deterministic: predicates are part
of the byte-determinism contract.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

from repro.core.exceptions import WorkflowError
from repro.workloads.spec import TaskTypeSpec, make_task_type

__all__ = [
    "EDGE_STATUSES",
    "Job",
    "JobEdge",
    "WorkflowDefinition",
    "after",
    "ensure",
    "job",
    "require",
    "workflow",
]

EDGE_STATUSES = ("success", "failure", "any")

Predicate = Callable[[int], bool]


class _DefinitionContext(threading.local):
    def __init__(self) -> None:
        self.stack: List[List["Job"]] = []


_CONTEXT = _DefinitionContext()


def _active_jobs() -> List["Job"]:
    if not _CONTEXT.stack:
        raise WorkflowError(
            "@job used outside a @workflow body; declare jobs inside a "
            "workflow definition function"
        )
    return _CONTEXT.stack[-1]


class JobEdge:
    """One control/data edge between two jobs."""

    __slots__ = ("parent", "status")

    def __init__(self, parent: "Job", status: str = "success") -> None:
        if status not in EDGE_STATUSES:
            raise WorkflowError(
                f"unknown edge status {status!r}; expected one of {EDGE_STATUSES}"
            )
        self.parent = parent
        self.status = status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobEdge({self.parent.name!r}, status={self.status!r})"


class Job:
    """One declared job: a task template plus its edges and conditions.

    Created by the :func:`job` decorator inside a workflow body; array jobs
    and loop trips expand into many engine tasks at run time, all sharing one
    federated function (so the profilers aggregate observations per job).
    """

    def __init__(
        self,
        fn: Callable,
        *,
        name: Optional[str] = None,
        function_name: Optional[str] = None,
        duration_s: float = 1.0,
        output_mb: float = 0.0,
        seconds_per_input_mb: float = 0.0,
        cores: int = 1,
        retries: Optional[int] = None,
        failure_rate: float = 0.0,
        array: Optional[int] = None,
        max_trips: Optional[int] = None,
        until: Optional[Predicate] = None,
    ) -> None:
        self.fn = fn
        self.name = name or fn.__name__
        self.retries = retries
        if array is not None and array < 1:
            raise WorkflowError("array size must be >= 1")
        if (max_trips is None) != (until is None):
            raise WorkflowError("loop jobs need both max_trips and until")
        if max_trips is not None and max_trips < 1:
            raise WorkflowError("max_trips must be >= 1")
        if array is not None and max_trips is not None:
            raise WorkflowError("a job cannot be both an array and a loop")
        self.array = array
        self.max_trips = max_trips
        self.until = until
        self.edges: List[JobEdge] = []
        self.preconditions: List[Predicate] = []
        self.postconditions: List[Predicate] = []
        # Jobs are identified by ``name`` (unique per workflow); the task
        # *type* the profilers and event log see defaults to it but can be
        # shared across jobs (``function_name``), e.g. when a generator
        # declares one job per DAG node of a single type.
        self.task_type = TaskTypeSpec(
            name=function_name or self.name,
            duration_s=duration_s,
            output_mb=output_mb,
            seconds_per_input_mb=seconds_per_input_mb,
            cores=cores,
            failure_rate=failure_rate,
        )
        self.function = make_task_type(self.task_type)
        jobs = _active_jobs()
        self._siblings = jobs
        jobs.append(self)

    # ------------------------------------------------------------- wiring
    def after(self, *parents: "Job", status: str = "success") -> "Job":
        """Add edges from ``parents`` (fluent alternative to ``@after``)."""
        for parent in parents:
            if not isinstance(parent, Job):
                raise WorkflowError(
                    f"after() expects Job objects, got {type(parent).__name__}"
                )
            if parent is self:
                raise WorkflowError(f"job {self.name!r} cannot depend on itself")
            if parent._siblings is not self._siblings:
                raise WorkflowError(
                    f"job {self.name!r} cannot depend on {parent.name!r} from a "
                    "different workflow instantiation"
                )
            self.edges.append(JobEdge(parent, status=status))
        return self

    @property
    def duration_s(self) -> float:
        return self.task_type.duration_s

    @property
    def output_mb(self) -> float:
        return self.task_type.output_mb

    @property
    def is_loop(self) -> bool:
        return self.max_trips is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.name!r})"


def job(fn: Optional[Callable] = None, /, **kwargs) -> Callable:
    """Declare a job.  Usable bare (``@job``) or with options (``@job(...)``).

    Options: ``name``, ``function_name`` (shared task type across jobs),
    ``duration_s``, ``output_mb``, ``seconds_per_input_mb``, ``cores``,
    ``retries`` (per-task §IV-G budget override), ``failure_rate`` (poison
    injection), ``array`` (parametric fan-out width), ``max_trips`` +
    ``until`` (convergence loop).
    """
    if fn is None:
        return lambda f: Job(f, **kwargs)
    return Job(fn, **kwargs)


def after(*parents: Job, status: str = "success") -> Callable[[Job], Job]:
    """Edge decorator: ``@after(parent, status="failure")`` above ``@job``."""

    def decorator(child: Job) -> Job:
        if not isinstance(child, Job):
            raise WorkflowError("@after must be applied above @job")
        return child.after(*parents, status=status)

    return decorator


def require(pred: Predicate) -> Callable[[Job], Job]:
    """Precondition decorator: checked right before materialization."""

    def decorator(child: Job) -> Job:
        if not isinstance(child, Job):
            raise WorkflowError("@require must be applied above @job")
        child.preconditions.append(pred)
        return child

    return decorator


def ensure(pred: Predicate) -> Callable[[Job], Job]:
    """Postcondition decorator: checked when the engine task completes."""

    def decorator(child: Job) -> Job:
        if not isinstance(child, Job):
            raise WorkflowError("@ensure must be applied above @job")
        child.postconditions.append(pred)
        return child

    return decorator


class WorkflowDefinition:
    """A reusable workflow: instantiating it re-runs the declaration body.

    Each instantiation yields fresh :class:`Job` objects, so one definition
    can run as many concurrent tenants without shared mutable state.
    """

    def __init__(self, build_fn: Callable, name: Optional[str] = None) -> None:
        self.build_fn = build_fn
        self.name = name or build_fn.__name__

    def instantiate(self, **params) -> List[Job]:
        """Run the declaration body; returns jobs in declaration order."""
        jobs: List[Job] = []
        _CONTEXT.stack.append(jobs)
        try:
            self.build_fn(**params)
        finally:
            _CONTEXT.stack.pop()
        if not jobs:
            raise WorkflowError(f"workflow {self.name!r} declares no jobs")
        names = set()
        for j in jobs:
            if j.name in names:
                raise WorkflowError(
                    f"workflow {self.name!r} declares job {j.name!r} twice; "
                    "job names must be unique within a workflow"
                )
            names.add(j.name)
        return jobs

    def task_types(self, **params) -> List[TaskTypeSpec]:
        """The task types one instantiation uses (profiler pre-training)."""
        return [j.task_type for j in self.instantiate(**params)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkflowDefinition({self.name!r})"


def workflow(
    fn: Optional[Callable] = None, /, *, name: Optional[str] = None
) -> Callable:
    """Declare a workflow definition from a declaration-body function."""
    if fn is None:
        return lambda f: WorkflowDefinition(f, name=name)
    return WorkflowDefinition(fn, name=name)


def sorted_jobs(jobs: Sequence[Job]) -> List[Job]:
    """Jobs in declaration order (already sorted; defensive copy)."""
    return list(jobs)
