"""The scenario zoo: authored workflows exercising dynamic control flow.

Each definition here is registered by name so scenarios address it straight
from ``WorkloadSpec(kind="zoo-...")`` and ``python -m repro run-scenario``:

- ``zoo-conditional`` — postcondition-driven branching: one branch's
  ``ensure`` holds (its success path runs, the fallback is skipped), the
  other's is violated (its recovery branch materializes instead).
- ``zoo-convergence`` — an iterate-until-metric loop with a bounded trip
  count, plus a failure edge that would catch divergence.
- ``zoo-array`` — a 10k+-wide array fan-out that expands lazily in batches
  and reduces at the end.
- ``zoo-mixed`` — all of the above in one workflow, plus a poisoned job
  (``failure_rate=1.0, retries=0``) whose §IV-G ladder exhausts on every
  endpoint so its ``status="failure"`` recovery edge genuinely fires; the
  preset runs several tenants of it under the churn timeline.
- ``zoo-layered`` — the legacy layered generator re-expressed via the API
  (:mod:`repro.workloads.authored`), digest-identical to the static
  original.

All predicates are closed-form and deterministic: the zoo is part of the
byte-determinism CI matrix.
"""

from __future__ import annotations

from repro.authoring.api import after, ensure, job, workflow
from repro.authoring.registry import register_workflow
from repro.workloads.authored import LAYERED_AUTHORED

__all__ = ["ZOO_ARRAY", "ZOO_CONDITIONAL", "ZOO_CONVERGENCE", "ZOO_MIXED"]


def _noop(*args, **kwargs):  # pragma: no cover - never runs in simulation
    return None


@workflow(name="zoo-conditional")
def ZOO_CONDITIONAL(duration_s: float = 4.0, output_mb: float = 5.0):
    @job(duration_s=duration_s, output_mb=output_mb)
    def calibrate():
        return _noop()

    # Postcondition holds: the publish path runs, the refine fallback is
    # skipped (its failure edge can never fire).
    @ensure(lambda i: True)
    @after(calibrate)
    @job(duration_s=duration_s, output_mb=output_mb)
    def screen_fast():
        return _noop()

    @after(screen_fast)
    @job(duration_s=duration_s / 2, output_mb=output_mb / 2)
    def publish_fast():
        return _noop()

    @after(screen_fast, status="failure")
    @job(duration_s=duration_s)
    def refine_fast():
        return _noop()

    # Postcondition violated: the engine task completes but the job's
    # authoring-level outcome is failure — the recovery branch materializes,
    # the would-be success path never does.
    @ensure(lambda i: False)
    @after(calibrate)
    @job(duration_s=duration_s, output_mb=output_mb)
    def screen_deep():
        return _noop()

    @after(screen_deep)
    @job(duration_s=duration_s)
    def publish_deep():
        return _noop()

    @after(screen_deep, status="failure")
    @job(duration_s=duration_s, output_mb=output_mb)
    def rescreen():
        return _noop()

    @after(rescreen)
    @job(duration_s=duration_s / 2, output_mb=output_mb / 2)
    def publish_rescreened():
        return _noop()


@workflow(name="zoo-convergence")
def ZOO_CONVERGENCE(
    duration_s: float = 4.0,
    output_mb: float = 5.0,
    converge_trip: int = 3,
    max_trips: int = 6,
):
    @job(duration_s=duration_s, output_mb=output_mb)
    def seed_state():
        return _noop()

    # Iterate-until-metric with a bounded trip count: each trip is a fresh
    # engine task chained on the previous trip's future.
    @after(seed_state)
    @job(
        duration_s=duration_s,
        output_mb=output_mb,
        max_trips=max_trips,
        until=lambda trip: trip >= converge_trip,
    )
    def refine():
        return _noop()

    @after(refine)
    @job(duration_s=duration_s / 2, output_mb=output_mb / 2)
    def summarize():
        return _noop()

    # Catches trip-budget exhaustion; skipped when the loop converges.
    @after(refine, status="failure")
    @job(duration_s=duration_s / 4)
    def diverged():
        return _noop()


@workflow(name="zoo-array")
def ZOO_ARRAY(width: int = 10000, duration_s: float = 0.05, output_mb: float = 2.0):
    @job(duration_s=1.0, output_mb=output_mb)
    def split():
        return _noop()

    # Parametric fan-out: expands lazily in ARRAY_BATCH slices, so the
    # 10k-wide stage flows through the columnar store in bounded windows.
    @after(split)
    @job(duration_s=duration_s, array=width)
    def shard():
        return _noop()

    @after(shard)
    @job(duration_s=1.0, output_mb=output_mb)
    def reduce_all():
        return _noop()


@workflow(name="zoo-mixed")
def ZOO_MIXED(width: int = 10000, duration_s: float = 0.05):
    @job(duration_s=1.0, output_mb=2.0)
    def ingest():
        return _noop()

    # Conditional branch whose postcondition is violated.
    @ensure(lambda i: False)
    @after(ingest)
    @job(duration_s=1.5, output_mb=1.0)
    def validate():
        return _noop()

    @after(validate)
    @job(duration_s=1.0)
    def fast_path():
        return _noop()

    @after(validate, status="failure")
    @job(duration_s=1.0, output_mb=1.0)
    def sanitize():
        return _noop()

    # Poisoned export: every attempt fails, retries=0 walks straight down
    # the §IV-G reassignment rungs until every endpoint has failed it —
    # a genuine terminal TaskFailed triggering the recovery edge.
    @after(ingest)
    @job(duration_s=0.5, output_mb=0.5, retries=0, failure_rate=1.0)
    def flaky_export():
        return _noop()

    @after(flaky_export, status="failure")
    @job(duration_s=1.0, output_mb=0.5)
    def export_fallback():
        return _noop()

    # Convergence loop over the sanitized data.
    @after(sanitize)
    @job(
        duration_s=1.0,
        output_mb=1.0,
        max_trips=5,
        until=lambda trip: trip >= 3,
    )
    def calibrate():
        return _noop()

    # The ≥10k-task array fan-out.
    @after(calibrate)
    @job(duration_s=duration_s, array=width)
    def simulate():
        return _noop()

    @after(simulate)
    @job(duration_s=1.0, output_mb=1.0)
    def reduce_results():
        return _noop()

    @after(reduce_results, export_fallback)
    @job(duration_s=0.5)
    def publish():
        return _noop()


register_workflow(
    ZOO_CONDITIONAL,
    description="postcondition-driven branching with a recovery edge",
    params=lambda spec: {
        "duration_s": spec.duration_s,
        "output_mb": spec.output_mb,
    },
)
register_workflow(
    ZOO_CONVERGENCE,
    description="iterate-until-metric loop with a bounded trip count",
    params=lambda spec: {
        "duration_s": spec.duration_s,
        "output_mb": spec.output_mb,
    },
)
register_workflow(
    ZOO_ARRAY,
    description="wide array fan-out expanding lazily in batches",
    params=lambda spec: {
        "width": spec.task_count,
        "duration_s": spec.duration_s,
        "output_mb": spec.output_mb,
    },
)
register_workflow(
    ZOO_MIXED,
    description="conditional + loop + poison-failure recovery + 10k array",
    params=lambda spec: {
        "width": spec.task_count,
        "duration_s": spec.duration_s,
    },
)
register_workflow(
    LAYERED_AUTHORED,
    description="legacy layered generator re-expressed via the authoring API",
    params=lambda spec: {
        "task_count": spec.task_count,
        "layer_width": spec.layer_width,
        "duration_s": spec.duration_s,
        "output_mb": spec.output_mb,
    },
)
